"""Columnar power-grid data model.

The data model follows the MATPOWER case format semantically (bus / generator
/ branch / generator-cost tables) but stores every column as a NumPy array
(struct-of-arrays) so the power-flow and OPF kernels can operate on whole
tables with vectorised expressions, as recommended by the HPC guides.

Bus types use the MATPOWER convention:

* ``1`` — PQ (load) bus
* ``2`` — PV (generator) bus
* ``3`` — reference (slack) bus
* ``4`` — isolated bus (not supported by the solvers; rejected by validation)
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Iterable, Optional

import numpy as np

#: MATPOWER bus-type codes.
PQ, PV, REF, ISOLATED = 1, 2, 3, 4

#: Generator-cost model codes (only polynomial costs are supported).
PW_LINEAR, POLYNOMIAL = 1, 2


def _as_float(values: Iterable[float]) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    return np.atleast_1d(arr).copy()


def _as_int(values: Iterable[int]) -> np.ndarray:
    arr = np.asarray(values, dtype=int)
    return np.atleast_1d(arr).copy()


@dataclass
class BusTable:
    """Columnar bus data.

    Attributes mirror the MATPOWER bus matrix: ``Pd``/``Qd`` are the active /
    reactive demands in MW / MVAr, ``Gs``/``Bs`` the shunt conductance /
    susceptance in MW / MVAr at 1.0 p.u. voltage, ``Vm``/``Va`` the initial
    voltage magnitude (p.u.) and angle (degrees) and ``Vmax``/``Vmin`` the
    operating voltage limits in p.u.
    """

    bus_i: np.ndarray
    bus_type: np.ndarray
    Pd: np.ndarray
    Qd: np.ndarray
    Gs: np.ndarray
    Bs: np.ndarray
    Vm: np.ndarray
    Va: np.ndarray
    base_kv: np.ndarray
    Vmax: np.ndarray
    Vmin: np.ndarray
    area: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=int))
    zone: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=int))

    def __post_init__(self) -> None:
        self.bus_i = _as_int(self.bus_i)
        self.bus_type = _as_int(self.bus_type)
        for name in ("Pd", "Qd", "Gs", "Bs", "Vm", "Va", "base_kv", "Vmax", "Vmin"):
            setattr(self, name, _as_float(getattr(self, name)))
        n = self.n
        if self.area.size == 0:
            self.area = np.ones(n, dtype=int)
        if self.zone.size == 0:
            self.zone = np.ones(n, dtype=int)
        self.area = _as_int(self.area)
        self.zone = _as_int(self.zone)
        self._check_lengths()

    def _check_lengths(self) -> None:
        n = self.n
        for f in fields(self):
            arr = getattr(self, f.name)
            if arr.shape != (n,):
                raise ValueError(
                    f"bus column {f.name!r} has shape {arr.shape}, expected ({n},)"
                )

    @property
    def n(self) -> int:
        """Number of buses."""
        return int(self.bus_i.shape[0])

    def copy(self) -> "BusTable":
        """Deep copy of the table."""
        return BusTable(**{f.name: getattr(self, f.name).copy() for f in fields(self)})


@dataclass
class GenTable:
    """Columnar generator data.

    ``bus`` holds external bus numbers (matching ``BusTable.bus_i``).  Power
    quantities are in MW / MVAr; ``Vg`` is the voltage set point in p.u.
    """

    bus: np.ndarray
    Pg: np.ndarray
    Qg: np.ndarray
    Qmax: np.ndarray
    Qmin: np.ndarray
    Vg: np.ndarray
    mbase: np.ndarray
    status: np.ndarray
    Pmax: np.ndarray
    Pmin: np.ndarray

    def __post_init__(self) -> None:
        self.bus = _as_int(self.bus)
        self.status = _as_int(self.status)
        for name in ("Pg", "Qg", "Qmax", "Qmin", "Vg", "mbase", "Pmax", "Pmin"):
            setattr(self, name, _as_float(getattr(self, name)))
        n = self.n
        for f in fields(self):
            arr = getattr(self, f.name)
            if arr.shape != (n,):
                raise ValueError(
                    f"gen column {f.name!r} has shape {arr.shape}, expected ({n},)"
                )

    @property
    def n(self) -> int:
        """Number of generators (in-service or not)."""
        return int(self.bus.shape[0])

    def copy(self) -> "GenTable":
        """Deep copy of the table."""
        return GenTable(**{f.name: getattr(self, f.name).copy() for f in fields(self)})


@dataclass
class BranchTable:
    """Columnar branch (line / transformer) data.

    ``r``, ``x`` and ``b`` are the series resistance, series reactance and
    total line-charging susceptance in p.u.; ``rate_a`` is the long-term MVA
    rating (0 means unlimited); ``ratio`` is the off-nominal tap ratio
    (0 means a transmission line, i.e. ratio 1) and ``angle`` the phase-shift
    angle in degrees.
    """

    f_bus: np.ndarray
    t_bus: np.ndarray
    r: np.ndarray
    x: np.ndarray
    b: np.ndarray
    rate_a: np.ndarray
    ratio: np.ndarray
    angle: np.ndarray
    status: np.ndarray
    angmin: np.ndarray = field(default_factory=lambda: np.zeros(0))
    angmax: np.ndarray = field(default_factory=lambda: np.zeros(0))

    def __post_init__(self) -> None:
        self.f_bus = _as_int(self.f_bus)
        self.t_bus = _as_int(self.t_bus)
        self.status = _as_int(self.status)
        for name in ("r", "x", "b", "rate_a", "ratio", "angle"):
            setattr(self, name, _as_float(getattr(self, name)))
        n = self.n
        if self.angmin.size == 0:
            self.angmin = np.full(n, -360.0)
        if self.angmax.size == 0:
            self.angmax = np.full(n, 360.0)
        self.angmin = _as_float(self.angmin)
        self.angmax = _as_float(self.angmax)
        for f in fields(self):
            arr = getattr(self, f.name)
            if arr.shape != (n,):
                raise ValueError(
                    f"branch column {f.name!r} has shape {arr.shape}, expected ({n},)"
                )

    @property
    def n(self) -> int:
        """Number of branches."""
        return int(self.f_bus.shape[0])

    def copy(self) -> "BranchTable":
        """Deep copy of the table."""
        return BranchTable(
            **{f.name: getattr(self, f.name).copy() for f in fields(self)}
        )


@dataclass
class GenCostTable:
    """Polynomial generator-cost data.

    Only MATPOWER cost model ``2`` (polynomial) is supported.  ``coeffs`` is a
    ``(ng, ncost_max)`` array of coefficients in *descending* power order, so a
    quadratic cost row is ``[c2, c1, c0]`` and evaluates to
    ``c2 * Pg**2 + c1 * Pg + c0`` with ``Pg`` in MW.
    """

    model: np.ndarray
    startup: np.ndarray
    shutdown: np.ndarray
    ncost: np.ndarray
    coeffs: np.ndarray

    def __post_init__(self) -> None:
        self.model = _as_int(self.model)
        self.ncost = _as_int(self.ncost)
        self.startup = _as_float(self.startup)
        self.shutdown = _as_float(self.shutdown)
        self.coeffs = np.atleast_2d(np.asarray(self.coeffs, dtype=float)).copy()
        n = self.n
        for name in ("startup", "shutdown", "ncost"):
            if getattr(self, name).shape != (n,):
                raise ValueError(f"gencost column {name!r} has wrong length")
        if self.coeffs.shape[0] != n:
            raise ValueError("gencost coeffs must have one row per generator")

    @property
    def n(self) -> int:
        """Number of cost rows (one per generator)."""
        return int(self.model.shape[0])

    def copy(self) -> "GenCostTable":
        """Deep copy of the table."""
        return GenCostTable(
            model=self.model.copy(),
            startup=self.startup.copy(),
            shutdown=self.shutdown.copy(),
            ncost=self.ncost.copy(),
            coeffs=self.coeffs.copy(),
        )


@dataclass
class Case:
    """A complete power-grid case: base MVA plus the four tables.

    The case keeps *external* bus numbering (arbitrary positive integers);
    :meth:`bus_index_map` provides the external-to-internal (0-based,
    consecutive) mapping the numerical kernels use.
    """

    name: str
    base_mva: float
    bus: BusTable
    gen: GenTable
    branch: BranchTable
    gencost: GenCostTable

    # ------------------------------------------------------------------ sizes
    @property
    def n_bus(self) -> int:
        """Number of buses."""
        return self.bus.n

    @property
    def n_gen(self) -> int:
        """Number of generators (including out-of-service units)."""
        return self.gen.n

    @property
    def n_branch(self) -> int:
        """Number of branches (including out-of-service branches)."""
        return self.branch.n

    # ------------------------------------------------------------- numbering
    def bus_index_map(self) -> Dict[int, int]:
        """Map external bus number -> internal 0-based index."""
        return {int(b): i for i, b in enumerate(self.bus.bus_i)}

    def gen_bus_indices(self) -> np.ndarray:
        """Internal bus index of each generator."""
        mapping = self.bus_index_map()
        return np.array([mapping[int(b)] for b in self.gen.bus], dtype=int)

    def branch_bus_indices(self) -> tuple[np.ndarray, np.ndarray]:
        """Internal (from, to) bus indices of each branch."""
        mapping = self.bus_index_map()
        f = np.array([mapping[int(b)] for b in self.branch.f_bus], dtype=int)
        t = np.array([mapping[int(b)] for b in self.branch.t_bus], dtype=int)
        return f, t

    def ref_bus_indices(self) -> np.ndarray:
        """Internal indices of reference (slack) buses."""
        return np.flatnonzero(self.bus.bus_type == REF)

    def pv_bus_indices(self) -> np.ndarray:
        """Internal indices of PV buses."""
        return np.flatnonzero(self.bus.bus_type == PV)

    def pq_bus_indices(self) -> np.ndarray:
        """Internal indices of PQ buses."""
        return np.flatnonzero(self.bus.bus_type == PQ)

    # ------------------------------------------------------------------ misc
    def copy(self) -> "Case":
        """Deep copy of the case."""
        return Case(
            name=self.name,
            base_mva=float(self.base_mva),
            bus=self.bus.copy(),
            gen=self.gen.copy(),
            branch=self.branch.copy(),
            gencost=self.gencost.copy(),
        )

    def with_loads(self, Pd: np.ndarray, Qd: np.ndarray, name: Optional[str] = None) -> "Case":
        """Return a copy of the case with bus loads replaced by ``Pd``/``Qd`` (MW/MVAr)."""
        Pd = np.asarray(Pd, dtype=float)
        Qd = np.asarray(Qd, dtype=float)
        if Pd.shape != (self.n_bus,) or Qd.shape != (self.n_bus,):
            raise ValueError("Pd/Qd must have one entry per bus")
        out = self.copy()
        out.bus.Pd = Pd.copy()
        out.bus.Qd = Qd.copy()
        if name is not None:
            out.name = name
        return out

    def total_load(self) -> complex:
        """Total complex load in MVA."""
        return complex(self.bus.Pd.sum(), self.bus.Qd.sum())

    def total_gen_capacity(self) -> float:
        """Total in-service active-power capacity in MW."""
        on = self.gen.status > 0
        return float(self.gen.Pmax[on].sum())

    def summary(self) -> Dict[str, float]:
        """Small dictionary of headline quantities (used in Table II)."""
        return {
            "name": self.name,
            "buses": self.n_bus,
            "generators": int(np.count_nonzero(self.gen.status > 0)),
            "branches": int(np.count_nonzero(self.branch.status > 0)),
            "total_load_mw": float(self.bus.Pd.sum()),
            "total_capacity_mw": self.total_gen_capacity(),
        }
