"""Construction helpers between MATPOWER-style matrices and :class:`Case`.

The concrete case modules (:mod:`repro.grid.cases`) store their data as
MATPOWER-style row lists because that format is compact and familiar; this
module converts those rows into the columnar :class:`repro.grid.Case` model
and back (the reverse direction is used by tests and by the synthetic case
generator).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.grid.components import (
    BranchTable,
    BusTable,
    Case,
    GenCostTable,
    GenTable,
)

#: Column order of a MATPOWER bus row (subset used here).
BUS_COLUMNS = (
    "bus_i",
    "type",
    "Pd",
    "Qd",
    "Gs",
    "Bs",
    "area",
    "Vm",
    "Va",
    "baseKV",
    "zone",
    "Vmax",
    "Vmin",
)

#: Column order of a MATPOWER gen row (subset used here).
GEN_COLUMNS = (
    "bus",
    "Pg",
    "Qg",
    "Qmax",
    "Qmin",
    "Vg",
    "mBase",
    "status",
    "Pmax",
    "Pmin",
)

#: Column order of a MATPOWER branch row (subset used here).
BRANCH_COLUMNS = (
    "fbus",
    "tbus",
    "r",
    "x",
    "b",
    "rateA",
    "rateB",
    "rateC",
    "ratio",
    "angle",
    "status",
    "angmin",
    "angmax",
)


def _matrix(rows: Iterable[Sequence[float]], min_cols: int, what: str) -> np.ndarray:
    mat = np.asarray([list(r) for r in rows], dtype=float)
    if mat.ndim != 2 or mat.shape[1] < min_cols:
        raise ValueError(f"{what} rows must have at least {min_cols} columns")
    return mat


def case_from_matpower(
    name: str,
    base_mva: float,
    bus_rows: Iterable[Sequence[float]],
    gen_rows: Iterable[Sequence[float]],
    branch_rows: Iterable[Sequence[float]],
    gencost_rows: Iterable[Sequence[float]],
) -> Case:
    """Build a :class:`Case` from MATPOWER-style row lists.

    ``bus_rows`` must have at least 13 columns, ``gen_rows`` at least 10,
    ``branch_rows`` at least 11 (``angmin``/``angmax`` default to ±360°) and
    ``gencost_rows`` follow ``[model, startup, shutdown, ncost, c_{n-1}..c_0]``.
    """
    bus = _matrix(bus_rows, 13, "bus")
    gen = _matrix(gen_rows, 10, "gen")
    branch = _matrix(branch_rows, 11, "branch")
    gencost = [list(map(float, row)) for row in gencost_rows]

    nl = branch.shape[0]
    if branch.shape[1] >= 13:
        angmin, angmax = branch[:, 11], branch[:, 12]
    else:
        angmin, angmax = np.full(nl, -360.0), np.full(nl, 360.0)

    bus_table = BusTable(
        bus_i=bus[:, 0],
        bus_type=bus[:, 1],
        Pd=bus[:, 2],
        Qd=bus[:, 3],
        Gs=bus[:, 4],
        Bs=bus[:, 5],
        area=bus[:, 6],
        Vm=bus[:, 7],
        Va=bus[:, 8],
        base_kv=bus[:, 9],
        zone=bus[:, 10],
        Vmax=bus[:, 11],
        Vmin=bus[:, 12],
    )
    gen_table = GenTable(
        bus=gen[:, 0],
        Pg=gen[:, 1],
        Qg=gen[:, 2],
        Qmax=gen[:, 3],
        Qmin=gen[:, 4],
        Vg=gen[:, 5],
        mbase=gen[:, 6],
        status=gen[:, 7],
        Pmax=gen[:, 8],
        Pmin=gen[:, 9],
    )
    branch_table = BranchTable(
        f_bus=branch[:, 0],
        t_bus=branch[:, 1],
        r=branch[:, 2],
        x=branch[:, 3],
        b=branch[:, 4],
        rate_a=branch[:, 5],
        ratio=branch[:, 8],
        angle=branch[:, 9],
        status=branch[:, 10],
        angmin=angmin,
        angmax=angmax,
    )

    ncost_max = max(int(row[3]) for row in gencost)
    coeffs = np.zeros((len(gencost), ncost_max))
    model = np.zeros(len(gencost), dtype=int)
    startup = np.zeros(len(gencost))
    shutdown = np.zeros(len(gencost))
    ncost = np.zeros(len(gencost), dtype=int)
    for i, row in enumerate(gencost):
        model[i] = int(row[0])
        startup[i] = row[1]
        shutdown[i] = row[2]
        ncost[i] = int(row[3])
        cs = row[4 : 4 + ncost[i]]
        if len(cs) != ncost[i]:
            raise ValueError("gencost row has fewer coefficients than ncost")
        # Right-align so the constant term always sits in the last column.
        coeffs[i, ncost_max - ncost[i] :] = cs
    gencost_table = GenCostTable(
        model=model, startup=startup, shutdown=shutdown, ncost=ncost, coeffs=coeffs
    )

    return Case(
        name=name,
        base_mva=float(base_mva),
        bus=bus_table,
        gen=gen_table,
        branch=branch_table,
        gencost=gencost_table,
    )


def case_to_matpower(case: Case) -> Dict[str, List[List[float]]]:
    """Convert a :class:`Case` back into MATPOWER-style row lists.

    The output dictionary has keys ``baseMVA``, ``bus``, ``gen``, ``branch``
    and ``gencost``.  Round-tripping through :func:`case_from_matpower` yields
    an identical case (checked by the property tests).
    """
    bus_rows = [
        [
            int(case.bus.bus_i[i]),
            int(case.bus.bus_type[i]),
            case.bus.Pd[i],
            case.bus.Qd[i],
            case.bus.Gs[i],
            case.bus.Bs[i],
            int(case.bus.area[i]),
            case.bus.Vm[i],
            case.bus.Va[i],
            case.bus.base_kv[i],
            int(case.bus.zone[i]),
            case.bus.Vmax[i],
            case.bus.Vmin[i],
        ]
        for i in range(case.n_bus)
    ]
    gen_rows = [
        [
            int(case.gen.bus[i]),
            case.gen.Pg[i],
            case.gen.Qg[i],
            case.gen.Qmax[i],
            case.gen.Qmin[i],
            case.gen.Vg[i],
            case.gen.mbase[i],
            int(case.gen.status[i]),
            case.gen.Pmax[i],
            case.gen.Pmin[i],
        ]
        for i in range(case.n_gen)
    ]
    branch_rows = [
        [
            int(case.branch.f_bus[i]),
            int(case.branch.t_bus[i]),
            case.branch.r[i],
            case.branch.x[i],
            case.branch.b[i],
            case.branch.rate_a[i],
            0.0,
            0.0,
            case.branch.ratio[i],
            case.branch.angle[i],
            int(case.branch.status[i]),
            case.branch.angmin[i],
            case.branch.angmax[i],
        ]
        for i in range(case.n_branch)
    ]
    gencost_rows = []
    ncost_max = case.gencost.coeffs.shape[1]
    for i in range(case.gencost.n):
        nc = int(case.gencost.ncost[i])
        coeffs = case.gencost.coeffs[i, ncost_max - nc :]
        gencost_rows.append(
            [
                int(case.gencost.model[i]),
                case.gencost.startup[i],
                case.gencost.shutdown[i],
                nc,
                *coeffs.tolist(),
            ]
        )
    return {
        "baseMVA": [[case.base_mva]],
        "bus": bus_rows,
        "gen": gen_rows,
        "branch": branch_rows,
        "gencost": gencost_rows,
    }
