"""Built-in test systems.

Two classic public IEEE/MATPOWER systems are embedded verbatim (``case9`` and
``case14``).  The larger systems used in the paper's Table II (30, 57, 118 and
300 buses) are produced by the deterministic synthetic generator in
:mod:`repro.grid.synthetic` with matching bus / generator / branch counts —
see ``DESIGN.md`` for the substitution rationale.

Use :func:`get_case` / :func:`available_cases` as the public entry points.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.grid.components import Case
from repro.grid.io import case_from_matpower
from repro.grid.validation import validate_case


def case9() -> Case:
    """WSCC 9-bus, 3-generator, 9-branch test system (MATPOWER ``case9``)."""
    bus = [
        [1, 3, 0, 0, 0, 0, 1, 1.0, 0, 345, 1, 1.1, 0.9],
        [2, 2, 0, 0, 0, 0, 1, 1.0, 0, 345, 1, 1.1, 0.9],
        [3, 2, 0, 0, 0, 0, 1, 1.0, 0, 345, 1, 1.1, 0.9],
        [4, 1, 0, 0, 0, 0, 1, 1.0, 0, 345, 1, 1.1, 0.9],
        [5, 1, 90, 30, 0, 0, 1, 1.0, 0, 345, 1, 1.1, 0.9],
        [6, 1, 0, 0, 0, 0, 1, 1.0, 0, 345, 1, 1.1, 0.9],
        [7, 1, 100, 35, 0, 0, 1, 1.0, 0, 345, 1, 1.1, 0.9],
        [8, 1, 0, 0, 0, 0, 1, 1.0, 0, 345, 1, 1.1, 0.9],
        [9, 1, 125, 50, 0, 0, 1, 1.0, 0, 345, 1, 1.1, 0.9],
    ]
    gen = [
        [1, 72.3, 27.03, 300, -300, 1.04, 100, 1, 250, 10],
        [2, 163.0, 6.54, 300, -300, 1.025, 100, 1, 300, 10],
        [3, 85.0, -10.95, 300, -300, 1.025, 100, 1, 270, 10],
    ]
    branch = [
        [1, 4, 0.0, 0.0576, 0.0, 250, 250, 250, 0, 0, 1, -360, 360],
        [4, 5, 0.017, 0.092, 0.158, 250, 250, 250, 0, 0, 1, -360, 360],
        [5, 6, 0.039, 0.17, 0.358, 150, 150, 150, 0, 0, 1, -360, 360],
        [3, 6, 0.0, 0.0586, 0.0, 300, 300, 300, 0, 0, 1, -360, 360],
        [6, 7, 0.0119, 0.1008, 0.209, 150, 150, 150, 0, 0, 1, -360, 360],
        [7, 8, 0.0085, 0.072, 0.149, 250, 250, 250, 0, 0, 1, -360, 360],
        [8, 2, 0.0, 0.0625, 0.0, 250, 250, 250, 0, 0, 1, -360, 360],
        [8, 9, 0.032, 0.161, 0.306, 250, 250, 250, 0, 0, 1, -360, 360],
        [9, 4, 0.01, 0.085, 0.176, 250, 250, 250, 0, 0, 1, -360, 360],
    ]
    gencost = [
        [2, 1500, 0, 3, 0.11, 5.0, 150],
        [2, 2000, 0, 3, 0.085, 1.2, 600],
        [2, 3000, 0, 3, 0.1225, 1.0, 335],
    ]
    case = case_from_matpower("case9", 100.0, bus, gen, branch, gencost)
    validate_case(case)
    return case


def case14() -> Case:
    """IEEE 14-bus test system (MATPOWER ``case14``).

    The MATPOWER distribution ships the case without branch MVA ratings
    (``rateA = 0`` meaning unlimited); we keep that convention so the AC-OPF
    inequality set is dominated by voltage and generation limits, exactly as
    in the original case.
    """
    bus = [
        [1, 3, 0.0, 0.0, 0, 0, 1, 1.060, 0.0, 0, 1, 1.06, 0.94],
        [2, 2, 21.7, 12.7, 0, 0, 1, 1.045, -4.98, 0, 1, 1.06, 0.94],
        [3, 2, 94.2, 19.0, 0, 0, 1, 1.010, -12.72, 0, 1, 1.06, 0.94],
        [4, 1, 47.8, -3.9, 0, 0, 1, 1.019, -10.33, 0, 1, 1.06, 0.94],
        [5, 1, 7.6, 1.6, 0, 0, 1, 1.020, -8.78, 0, 1, 1.06, 0.94],
        [6, 2, 11.2, 7.5, 0, 0, 1, 1.070, -14.22, 0, 1, 1.06, 0.94],
        [7, 1, 0.0, 0.0, 0, 0, 1, 1.062, -13.37, 0, 1, 1.06, 0.94],
        [8, 2, 0.0, 0.0, 0, 0, 1, 1.090, -13.36, 0, 1, 1.06, 0.94],
        [9, 1, 29.5, 16.6, 0, 19, 1, 1.056, -14.94, 0, 1, 1.06, 0.94],
        [10, 1, 9.0, 5.8, 0, 0, 1, 1.051, -15.10, 0, 1, 1.06, 0.94],
        [11, 1, 3.5, 1.8, 0, 0, 1, 1.057, -14.79, 0, 1, 1.06, 0.94],
        [12, 1, 6.1, 1.6, 0, 0, 1, 1.055, -15.07, 0, 1, 1.06, 0.94],
        [13, 1, 13.5, 5.8, 0, 0, 1, 1.050, -15.16, 0, 1, 1.06, 0.94],
        [14, 1, 14.9, 5.0, 0, 0, 1, 1.036, -16.04, 0, 1, 1.06, 0.94],
    ]
    gen = [
        [1, 232.4, -16.9, 10.0, 0.0, 1.060, 100, 1, 332.4, 0],
        [2, 40.0, 42.4, 50.0, -40.0, 1.045, 100, 1, 140.0, 0],
        [3, 0.0, 23.4, 40.0, 0.0, 1.010, 100, 1, 100.0, 0],
        [6, 0.0, 12.2, 24.0, -6.0, 1.070, 100, 1, 100.0, 0],
        [8, 0.0, 17.4, 24.0, -6.0, 1.090, 100, 1, 100.0, 0],
    ]
    branch = [
        [1, 2, 0.01938, 0.05917, 0.0528, 0, 0, 0, 0, 0, 1, -360, 360],
        [1, 5, 0.05403, 0.22304, 0.0492, 0, 0, 0, 0, 0, 1, -360, 360],
        [2, 3, 0.04699, 0.19797, 0.0438, 0, 0, 0, 0, 0, 1, -360, 360],
        [2, 4, 0.05811, 0.17632, 0.0340, 0, 0, 0, 0, 0, 1, -360, 360],
        [2, 5, 0.05695, 0.17388, 0.0346, 0, 0, 0, 0, 0, 1, -360, 360],
        [3, 4, 0.06701, 0.17103, 0.0128, 0, 0, 0, 0, 0, 1, -360, 360],
        [4, 5, 0.01335, 0.04211, 0.0, 0, 0, 0, 0, 0, 1, -360, 360],
        [4, 7, 0.0, 0.20912, 0.0, 0, 0, 0, 0.978, 0, 1, -360, 360],
        [4, 9, 0.0, 0.55618, 0.0, 0, 0, 0, 0.969, 0, 1, -360, 360],
        [5, 6, 0.0, 0.25202, 0.0, 0, 0, 0, 0.932, 0, 1, -360, 360],
        [6, 11, 0.09498, 0.19890, 0.0, 0, 0, 0, 0, 0, 1, -360, 360],
        [6, 12, 0.12291, 0.25581, 0.0, 0, 0, 0, 0, 0, 1, -360, 360],
        [6, 13, 0.06615, 0.13027, 0.0, 0, 0, 0, 0, 0, 1, -360, 360],
        [7, 8, 0.0, 0.17615, 0.0, 0, 0, 0, 0, 0, 1, -360, 360],
        [7, 9, 0.0, 0.11001, 0.0, 0, 0, 0, 0, 0, 1, -360, 360],
        [9, 10, 0.03181, 0.08450, 0.0, 0, 0, 0, 0, 0, 1, -360, 360],
        [9, 14, 0.12711, 0.27038, 0.0, 0, 0, 0, 0, 0, 1, -360, 360],
        [10, 11, 0.08205, 0.19207, 0.0, 0, 0, 0, 0, 0, 1, -360, 360],
        [12, 13, 0.22092, 0.19988, 0.0, 0, 0, 0, 0, 0, 1, -360, 360],
        [13, 14, 0.17093, 0.34802, 0.0, 0, 0, 0, 0, 0, 1, -360, 360],
    ]
    gencost = [
        [2, 0, 0, 3, 0.0430293, 20.0, 0.0],
        [2, 0, 0, 3, 0.25, 20.0, 0.0],
        [2, 0, 0, 3, 0.01, 40.0, 0.0],
        [2, 0, 0, 3, 0.01, 40.0, 0.0],
        [2, 0, 0, 3, 0.01, 40.0, 0.0],
    ]
    case = case_from_matpower("case14", 100.0, bus, gen, branch, gencost)
    validate_case(case)
    return case


# --------------------------------------------------------------------------
# Registry.  Synthetic Table-II systems are registered lazily to avoid an
# import cycle (synthetic.py uses the DC power flow to calibrate ratings).
# --------------------------------------------------------------------------
_REGISTRY: Dict[str, Callable[[], Case]] = {
    "case9": case9,
    "case14": case14,
}


def _register_synthetic() -> None:
    from repro.grid import synthetic

    _REGISTRY.setdefault("case30s", lambda: synthetic.case30s())
    _REGISTRY.setdefault("case57s", lambda: synthetic.case57s())
    _REGISTRY.setdefault("case118s", lambda: synthetic.case118s())
    _REGISTRY.setdefault("case300s", lambda: synthetic.case300s())


def available_cases() -> List[str]:
    """Names accepted by :func:`get_case`."""
    _register_synthetic()
    return sorted(_REGISTRY)


def get_case(name: str) -> Case:
    """Return a freshly-constructed built-in case by name.

    Recognised names: ``case9``, ``case14`` (exact IEEE data) and ``case30s``,
    ``case57s``, ``case118s``, ``case300s`` (synthetic Table-II equivalents).
    """
    _register_synthetic()
    try:
        builder = _REGISTRY[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown case {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from exc
    return builder()


def register_case(name: str, builder: Callable[[], Case]) -> None:
    """Register a user-supplied case builder under ``name``.

    Downstream users can plug their own systems into the framework (data
    generation, benchmarks, examples) without touching library code.
    """
    if not callable(builder):
        raise TypeError("builder must be callable")
    _REGISTRY[name] = builder
