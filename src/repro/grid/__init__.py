"""Power-grid data model, built-in test systems and load sampling."""

from repro.grid.components import (
    PQ,
    PV,
    REF,
    ISOLATED,
    POLYNOMIAL,
    PW_LINEAR,
    BranchTable,
    BusTable,
    Case,
    GenCostTable,
    GenTable,
)
from repro.grid.cases import available_cases, case9, case14, get_case, register_case
from repro.grid.io import case_from_matpower, case_to_matpower
from repro.grid.perturb import (
    CorrelatedLoadSampler,
    LoadSample,
    iter_load_samples,
    nominal_load,
    sample_load_trajectory,
    sample_loads,
    scaled_load,
    stressed_area_load,
)
from repro.grid.synthetic import SyntheticGridConfig, generate_case
from repro.grid.validation import CaseValidationError, validate_case

__all__ = [
    "PQ",
    "PV",
    "REF",
    "ISOLATED",
    "POLYNOMIAL",
    "PW_LINEAR",
    "BusTable",
    "GenTable",
    "BranchTable",
    "GenCostTable",
    "Case",
    "case9",
    "case14",
    "get_case",
    "register_case",
    "available_cases",
    "case_from_matpower",
    "case_to_matpower",
    "CorrelatedLoadSampler",
    "LoadSample",
    "sample_load_trajectory",
    "sample_loads",
    "iter_load_samples",
    "scaled_load",
    "stressed_area_load",
    "nominal_load",
    "SyntheticGridConfig",
    "generate_case",
    "CaseValidationError",
    "validate_case",
]
