"""Small shared utilities: RNG handling, timing and logging helpers."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Timer, timed
from repro.utils.logging import get_logger

__all__ = ["ensure_rng", "spawn_rngs", "Timer", "timed", "get_logger"]
