"""Small shared utilities: RNG handling, timing, logging and sparse helpers."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Timer, timed
from repro.utils.logging import get_logger
from repro.utils.sparse import (
    CachedBmat,
    CachedTranspose,
    cached_vstack_csr,
    col_scaled_csr,
    row_scaled_csr,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Timer",
    "timed",
    "get_logger",
    "CachedBmat",
    "CachedTranspose",
    "cached_vstack_csr",
    "col_scaled_csr",
    "row_scaled_csr",
]
