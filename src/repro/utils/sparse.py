"""Structure-cached sparse block assembly.

Interior-point iterations assemble the same block matrices (constraint
Jacobians, Lagrangian Hessians, the KKT system itself) over and over with an
*unchanged sparsity pattern* — only the numeric values move.  ``scipy``'s
``bmat``/``vstack`` redo the full symbolic work (COO concatenation, duplicate
summing, index sorting) on every call, which dominates assembly time for the
OPF-sized systems this library targets.

:class:`CachedBmat` performs that symbolic work once: the first call records,
for every stored nonzero of the assembled matrix, which block-data slot it
came from.  Subsequent calls with pattern-identical blocks reduce to one
``concatenate`` and one fancy-index gather over the numeric ``data`` arrays.
A pattern change (detected by comparing the blocks' index arrays) transparently
falls back to a fresh symbolic assembly, so callers never need to know whether
the cache hit.

Caches are **not thread-safe**.  Returned matrices own their ``data`` array
(safe to hold across calls) but share the cached index arrays — treat them as
read-only.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

__all__ = [
    "CachedBmat",
    "CachedTranspose",
    "cached_vstack_csr",
    "col_scaled_csr",
    "row_scaled_csr",
    "same_pattern",
]


def _construct_unchecked(cls, data, indices, indptr, shape):
    """Build a compressed sparse matrix without scipy's format validation.

    The public constructors re-validate index dtypes and shapes on every call
    (~10µs each), which dominates when thousands of small matrices are created
    per solve.  Callers guarantee canonical, in-range inputs (they reuse the
    index arrays of an existing canonical matrix), so validation is redundant.
    """
    m = cls.__new__(cls)
    m.data = data
    m.indices = indices
    m.indptr = indptr
    m._shape = shape
    return m


def _probe_unchecked_construction() -> bool:
    try:
        probe = _construct_unchecked(
            sp.csr_matrix,
            np.array([2.0, 3.0]),
            np.array([0, 1], dtype=np.int32),
            np.array([0, 1, 2], dtype=np.int32),
            (2, 2),
        )
        ok = (
            probe.shape == (2, 2)
            and probe.nnz == 2
            and np.allclose(probe.toarray(), [[2.0, 0.0], [0.0, 3.0]])
            and np.allclose((probe @ probe).toarray(), [[4.0, 0.0], [0.0, 9.0]])
            and np.allclose(probe.T.tocsr().toarray(), probe.toarray().T)
        )
        probe.has_canonical_format = True
        probe.has_sorted_indices = True
        return bool(ok)
    except Exception:  # pragma: no cover - depends on scipy internals
        return False


#: Whether the scipy in use supports the unchecked constructor (verified once
#: at import); when it does not, the public constructors are used instead.
_UNCHECKED_OK = _probe_unchecked_construction()


def _fast_compressed(cls, data, indices, indptr, shape):
    """Canonical compressed matrix from trusted arrays, skipping validation."""
    if _UNCHECKED_OK:
        m = _construct_unchecked(cls, data, indices, indptr, shape)
        m.has_canonical_format = True  # inputs come from a canonical matrix
        return m
    return cls((data, indices, indptr), shape=shape, copy=False)


def same_pattern(
    matrix, indptr: Optional[np.ndarray], indices: Optional[np.ndarray]
) -> bool:
    """Whether a compressed matrix has the cached sparsity pattern.

    Checks array identity first — hot-loop callers hand back the very same
    index arrays every iteration, making the common case O(1) — and falls
    back to an element-wise comparison.
    """
    if indptr is None or indices is None:
        return False
    if matrix.indptr is not indptr and not np.array_equal(matrix.indptr, indptr):
        return False
    if matrix.indices is not indices and not np.array_equal(matrix.indices, indices):
        return False
    return True


def _canonical_csr(block) -> sp.csr_matrix:
    """Canonical (sorted, duplicate-free) CSR view of ``block``.

    Dense inputs (ndarray / matrix-like) are coerced — callbacks handing the
    solver dense Jacobians are part of the public MIPS API.
    """
    if not sp.issparse(block):
        return sp.csr_matrix(np.atleast_2d(np.asarray(block)))
    csr = block.tocsr()
    if not csr.has_canonical_format:
        csr = csr.copy()
        csr.sum_duplicates()
    elif not csr.has_sorted_indices:
        csr = csr.copy()
        csr.sort_indices()
    return csr


class CachedBmat:
    """Assemble ``sp.bmat(blocks)`` with symbolic structure reuse.

    Parameters
    ----------
    format:
        Output sparse format (``"csr"`` or ``"csc"``).

    Notes
    -----
    The fast path requires every block to present its nonzeros in the same
    order as when the structure was cached; canonical CSR blocks (the output
    of normal scipy arithmetic) guarantee this.  Blocks are canonicalised on
    the way in, so any sparse input is accepted.
    """

    def __init__(self, format: str = "csr"):
        if format not in ("csr", "csc"):
            raise ValueError("format must be 'csr' or 'csc'")
        self.format = format
        self._pattern: Optional[List[List[Optional[tuple]]]] = None
        self._order: Optional[np.ndarray] = None
        self._template = None
        #: Number of fast (structure-reusing) assemblies performed.
        self.hits = 0
        #: Number of full symbolic assemblies performed.
        self.misses = 0

    # ------------------------------------------------------------------ internals
    def _matches(self, blocks: Sequence[Sequence[Optional[sp.csr_matrix]]]) -> bool:
        pattern = self._pattern
        if pattern is None or len(pattern) != len(blocks):
            return False
        for prow, brow in zip(pattern, blocks):
            if len(prow) != len(brow):
                return False
            for pblk, blk in zip(prow, brow):
                if (pblk is None) != (blk is None):
                    return False
                if blk is None:
                    continue
                shape, indptr, indices = pblk
                if blk.shape != shape:
                    return False
                if not same_pattern(blk, indptr, indices):
                    return False
        return True

    def _rebuild(self, blocks: Sequence[Sequence[Optional[sp.csr_matrix]]]) -> None:
        coded_rows = []
        pattern: List[List[Optional[tuple]]] = []
        offset = 0
        for brow in blocks:
            coded_row = []
            prow: List[Optional[tuple]] = []
            for blk in brow:
                if blk is None:
                    coded_row.append(None)
                    prow.append(None)
                    continue
                coded = blk.copy()
                # 1-based slot ids survive the COO round-trip inside bmat
                # (blocks are disjoint, so no duplicate summing occurs).
                coded.data = np.arange(offset + 1, offset + blk.nnz + 1, dtype=float)
                offset += blk.nnz
                coded_row.append(coded)
                prow.append((blk.shape, blk.indptr, blk.indices))
            coded_rows.append(coded_row)
            pattern.append(prow)

        template = sp.bmat(coded_rows, format=self.format)
        self._order = template.data.astype(np.intp) - 1
        self._template = template
        self._pattern = pattern
        self.misses += 1

    # -------------------------------------------------------------------- public
    def assemble(self, blocks: Sequence[Sequence[Optional[sp.spmatrix]]]):
        """Assemble the block matrix, reusing cached structure when possible."""
        canon = [
            [None if blk is None else _canonical_csr(blk) for blk in brow]
            for brow in blocks
        ]
        if not self._matches(canon):
            self._rebuild(canon)
        else:
            self.hits += 1
        data_parts = [blk.data for brow in canon for blk in brow if blk is not None]
        src = np.concatenate(data_parts) if data_parts else np.zeros(0)
        template = self._template
        matrix_cls = sp.csr_matrix if self.format == "csr" else sp.csc_matrix
        # The gather allocates fresh data, so the returned matrix is safe to
        # hold across calls; only the index arrays are shared with the cache.
        return _fast_compressed(
            matrix_cls, src[self._order], template.indices, template.indptr, template.shape
        )


class CachedTranspose:
    """Transpose a CSR matrix with cached symbolic structure.

    ``m.T.tocsr()`` re-sorts the whole matrix on every call; for a fixed
    pattern the permutation from ``m.data`` to ``m.T.data`` is constant, so it
    is recorded once and replayed as a single gather.  The returned matrix
    shares the cached index arrays — treat it as read-only.
    """

    def __init__(self) -> None:
        self._indptr: Optional[np.ndarray] = None
        self._indices: Optional[np.ndarray] = None
        self._shape: Optional[tuple] = None
        self._order: Optional[np.ndarray] = None
        self._t_indptr: Optional[np.ndarray] = None
        self._t_indices: Optional[np.ndarray] = None

    def _matches(self, m: sp.csr_matrix) -> bool:
        if self._order is None or m.shape != self._shape:
            return False
        return same_pattern(m, self._indptr, self._indices)

    def transpose(self, m: sp.spmatrix) -> sp.csr_matrix:
        """Return ``m.T`` as canonical CSR, reusing cached structure."""
        m = _canonical_csr(m)
        if not self._matches(m):
            coded = m.copy()
            coded.data = np.arange(1, m.nnz + 1, dtype=float)
            t = coded.T.tocsr()
            t.sort_indices()
            self._indptr = m.indptr
            self._indices = m.indices
            self._shape = m.shape
            self._order = t.data.astype(np.intp) - 1
            self._t_indptr = t.indptr
            self._t_indices = t.indices
        return _fast_compressed(
            sp.csr_matrix,
            m.data[self._order],
            self._t_indices,
            self._t_indptr,
            (m.shape[1], m.shape[0]),
        )


def cached_vstack_csr(cache: CachedBmat, blocks: Sequence[sp.spmatrix]) -> sp.csr_matrix:
    """Structure-cached ``sp.vstack(blocks, format="csr")``."""
    return cache.assemble([[blk] for blk in blocks])


def row_scaled_csr(matrix: sp.csr_matrix, scale: np.ndarray, out: Optional[np.ndarray] = None) -> sp.csr_matrix:
    """Row-scale a canonical CSR matrix without symbolic work.

    Equivalent to ``sp.diags(scale) @ matrix`` (same values, same structure)
    but a pure data operation.  Returns a CSR matrix sharing ``matrix``'s
    index arrays whose row ``i`` is ``scale[i] * matrix[i]``.  ``out``
    (length ``nnz``, matching dtype) is reused as the data buffer when
    supplied, avoiding a per-call allocation.
    """
    matrix = _canonical_csr(matrix)
    per_row = np.diff(matrix.indptr)
    data = np.multiply(matrix.data, np.repeat(scale, per_row), out=out)
    return _fast_compressed(
        sp.csr_matrix, data, matrix.indices, matrix.indptr, matrix.shape
    )


def col_scaled_csr(matrix: sp.csr_matrix, scale: np.ndarray) -> sp.csr_matrix:
    """Column-scale a canonical CSR matrix without symbolic work.

    Equivalent to ``matrix @ sp.diags(scale)`` (same values, same structure)
    but a pure data operation; the result shares ``matrix``'s index arrays.
    """
    matrix = _canonical_csr(matrix)
    return _fast_compressed(
        sp.csr_matrix,
        matrix.data * scale[matrix.indices],
        matrix.indices,
        matrix.indptr,
        matrix.shape,
    )
