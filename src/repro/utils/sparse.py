"""Structure-cached sparse block assembly.

Interior-point iterations assemble the same block matrices (constraint
Jacobians, Lagrangian Hessians, the KKT system itself) over and over with an
*unchanged sparsity pattern* — only the numeric values move.  ``scipy``'s
``bmat``/``vstack`` redo the full symbolic work (COO concatenation, duplicate
summing, index sorting) on every call, which dominates assembly time for the
OPF-sized systems this library targets.

:class:`CachedBmat` performs that symbolic work once: the first call records,
for every stored nonzero of the assembled matrix, which block-data slot it
came from.  Subsequent calls with pattern-identical blocks reduce to one
``concatenate`` and one fancy-index gather over the numeric ``data`` arrays.
A pattern change (detected by comparing the blocks' index arrays) transparently
falls back to a fresh symbolic assembly, so callers never need to know whether
the cache hit.

Caches are **not thread-safe**.  Returned matrices own their ``data`` array
(safe to hold across calls) but share the cached index arrays — treat them as
read-only.

Batch extension
---------------
The batched lockstep solver (:mod:`repro.mips.batch`) evaluates *B*
same-structure problems at once: every sparse quantity becomes one shared
sparsity pattern plus a ``(B, nnz)`` *data plane*.  The second half of this
module provides the pattern-level plans that make those data planes cheap to
manipulate: :func:`pattern_union` (scatter several fixed patterns into one),
:func:`transpose_plan` (the data permutation of a fixed-pattern transpose),
:func:`batched_row_sums` / :func:`batched_matvec` (per-slot CSR reductions)
and :class:`MatmulPlan` (a fixed-pattern sparse matrix product expanded once
into gather/reduce indices).  All plans are computed once per pattern and
replayed as pure NumPy data operations.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

__all__ = [
    "BlockDiagPlan",
    "CachedBmat",
    "CachedTranspose",
    "MatmulPlan",
    "batched_matvec",
    "batched_row_sums",
    "cached_vstack_csr",
    "col_scaled_csr",
    "csc_from_template",
    "csr_from_template",
    "csr_rows",
    "pattern_union",
    "row_scaled_csr",
    "same_pattern",
    "symmetric_lower_map",
    "transpose_plan",
]


def _construct_unchecked(cls, data, indices, indptr, shape):
    """Build a compressed sparse matrix without scipy's format validation.

    The public constructors re-validate index dtypes and shapes on every call
    (~10µs each), which dominates when thousands of small matrices are created
    per solve.  Callers guarantee canonical, in-range inputs (they reuse the
    index arrays of an existing canonical matrix), so validation is redundant.
    """
    m = cls.__new__(cls)
    m.data = data
    m.indices = indices
    m.indptr = indptr
    m._shape = shape
    return m


def _probe_unchecked_construction() -> bool:
    try:
        probe = _construct_unchecked(
            sp.csr_matrix,
            np.array([2.0, 3.0]),
            np.array([0, 1], dtype=np.int32),
            np.array([0, 1, 2], dtype=np.int32),
            (2, 2),
        )
        ok = (
            probe.shape == (2, 2)
            and probe.nnz == 2
            and np.allclose(probe.toarray(), [[2.0, 0.0], [0.0, 3.0]])
            and np.allclose((probe @ probe).toarray(), [[4.0, 0.0], [0.0, 9.0]])
            and np.allclose(probe.T.tocsr().toarray(), probe.toarray().T)
        )
        probe.has_canonical_format = True
        probe.has_sorted_indices = True
        return bool(ok)
    except Exception:  # pragma: no cover - depends on scipy internals
        return False


#: Whether the scipy in use supports the unchecked constructor (verified once
#: at import); when it does not, the public constructors are used instead.
_UNCHECKED_OK = _probe_unchecked_construction()


def _fast_compressed(cls, data, indices, indptr, shape):
    """Canonical compressed matrix from trusted arrays, skipping validation."""
    if _UNCHECKED_OK:
        m = _construct_unchecked(cls, data, indices, indptr, shape)
        m.has_canonical_format = True  # inputs come from a canonical matrix
        return m
    return cls((data, indices, indptr), shape=shape, copy=False)


def same_pattern(
    matrix, indptr: Optional[np.ndarray], indices: Optional[np.ndarray]
) -> bool:
    """Whether a compressed matrix has the cached sparsity pattern.

    Checks array identity first — hot-loop callers hand back the very same
    index arrays every iteration, making the common case O(1) — and falls
    back to an element-wise comparison.
    """
    if indptr is None or indices is None:
        return False
    if matrix.indptr is not indptr and not np.array_equal(matrix.indptr, indptr):
        return False
    if matrix.indices is not indices and not np.array_equal(matrix.indices, indices):
        return False
    return True


def _canonical_csr(block) -> sp.csr_matrix:
    """Canonical (sorted, duplicate-free) CSR view of ``block``.

    Dense inputs (ndarray / matrix-like) are coerced — callbacks handing the
    solver dense Jacobians are part of the public MIPS API.
    """
    if not sp.issparse(block):
        return sp.csr_matrix(np.atleast_2d(np.asarray(block)))
    csr = block.tocsr()
    if not csr.has_canonical_format:
        csr = csr.copy()
        csr.sum_duplicates()
    elif not csr.has_sorted_indices:
        csr = csr.copy()
        csr.sort_indices()
    return csr


class CachedBmat:
    """Assemble ``sp.bmat(blocks)`` with symbolic structure reuse.

    Parameters
    ----------
    format:
        Output sparse format (``"csr"`` or ``"csc"``).

    Notes
    -----
    The fast path requires every block to present its nonzeros in the same
    order as when the structure was cached; canonical CSR blocks (the output
    of normal scipy arithmetic) guarantee this.  Blocks are canonicalised on
    the way in, so any sparse input is accepted.
    """

    def __init__(self, format: str = "csr"):
        if format not in ("csr", "csc"):
            raise ValueError("format must be 'csr' or 'csc'")
        self.format = format
        self._pattern: Optional[List[List[Optional[tuple]]]] = None
        self._order: Optional[np.ndarray] = None
        self._template = None
        #: Number of fast (structure-reusing) assemblies performed.
        self.hits = 0
        #: Number of full symbolic assemblies performed.
        self.misses = 0

    # ------------------------------------------------------------------ internals
    def _matches(self, blocks: Sequence[Sequence[Optional[sp.csr_matrix]]]) -> bool:
        pattern = self._pattern
        if pattern is None or len(pattern) != len(blocks):
            return False
        for prow, brow in zip(pattern, blocks):
            if len(prow) != len(brow):
                return False
            for pblk, blk in zip(prow, brow):
                if (pblk is None) != (blk is None):
                    return False
                if blk is None:
                    continue
                shape, indptr, indices = pblk
                if blk.shape != shape:
                    return False
                if not same_pattern(blk, indptr, indices):
                    return False
        return True

    def _rebuild(self, blocks: Sequence[Sequence[Optional[sp.csr_matrix]]]) -> None:
        coded_rows = []
        pattern: List[List[Optional[tuple]]] = []
        offset = 0
        for brow in blocks:
            coded_row = []
            prow: List[Optional[tuple]] = []
            for blk in brow:
                if blk is None:
                    coded_row.append(None)
                    prow.append(None)
                    continue
                coded = blk.copy()
                # 1-based slot ids survive the COO round-trip inside bmat
                # (blocks are disjoint, so no duplicate summing occurs).
                coded.data = np.arange(offset + 1, offset + blk.nnz + 1, dtype=float)
                offset += blk.nnz
                coded_row.append(coded)
                prow.append((blk.shape, blk.indptr, blk.indices))
            coded_rows.append(coded_row)
            pattern.append(prow)

        template = sp.bmat(coded_rows, format=self.format)
        self._order = template.data.astype(np.intp) - 1
        self._template = template
        self._pattern = pattern
        self.misses += 1

    # -------------------------------------------------------------------- public
    def assemble(self, blocks: Sequence[Sequence[Optional[sp.spmatrix]]]):
        """Assemble the block matrix, reusing cached structure when possible."""
        canon = [
            [None if blk is None else _canonical_csr(blk) for blk in brow]
            for brow in blocks
        ]
        if not self._matches(canon):
            self._rebuild(canon)
        else:
            self.hits += 1
        data_parts = [blk.data for brow in canon for blk in brow if blk is not None]
        src = np.concatenate(data_parts) if data_parts else np.zeros(0)
        template = self._template
        matrix_cls = sp.csr_matrix if self.format == "csr" else sp.csc_matrix
        # The gather allocates fresh data, so the returned matrix is safe to
        # hold across calls; only the index arrays are shared with the cache.
        return _fast_compressed(
            matrix_cls, src[self._order], template.indices, template.indptr, template.shape
        )

    def assemble_batch(self, data_planes: Sequence[np.ndarray]) -> np.ndarray:
        """Batched fast path over a previously cached structure.

        ``data_planes`` holds one ``(B, nnz)`` array per *non-None* block in
        row-major block order, with exactly the patterns of the last
        :meth:`assemble` call (callers prime the cache once with template
        matrices and are responsible for keeping the patterns in sync).
        Returns the ``(B, out_nnz)`` data planes of the assembled matrix in
        the cached template's storage order.
        """
        if self._order is None:
            raise RuntimeError("assemble_batch requires a primed cache (call assemble first)")
        planes = [np.atleast_2d(np.asarray(p)) for p in data_planes]
        src = np.concatenate(planes, axis=1) if planes else np.zeros((1, 0))
        return src[:, self._order]

    @property
    def template(self):
        """The cached assembled matrix (pattern only — data is meaningless).

        Shares the cache's index arrays; treat it as read-only.  ``None``
        until the first :meth:`assemble` call.
        """
        return self._template


class CachedTranspose:
    """Transpose a CSR matrix with cached symbolic structure.

    ``m.T.tocsr()`` re-sorts the whole matrix on every call; for a fixed
    pattern the permutation from ``m.data`` to ``m.T.data`` is constant, so it
    is recorded once and replayed as a single gather.  The returned matrix
    shares the cached index arrays — treat it as read-only.
    """

    def __init__(self) -> None:
        self._indptr: Optional[np.ndarray] = None
        self._indices: Optional[np.ndarray] = None
        self._shape: Optional[tuple] = None
        self._order: Optional[np.ndarray] = None
        self._t_indptr: Optional[np.ndarray] = None
        self._t_indices: Optional[np.ndarray] = None

    def _matches(self, m: sp.csr_matrix) -> bool:
        if self._order is None or m.shape != self._shape:
            return False
        return same_pattern(m, self._indptr, self._indices)

    def transpose(self, m: sp.spmatrix) -> sp.csr_matrix:
        """Return ``m.T`` as canonical CSR, reusing cached structure."""
        m = _canonical_csr(m)
        if not self._matches(m):
            coded = m.copy()
            coded.data = np.arange(1, m.nnz + 1, dtype=float)
            t = coded.T.tocsr()
            t.sort_indices()
            self._indptr = m.indptr
            self._indices = m.indices
            self._shape = m.shape
            self._order = t.data.astype(np.intp) - 1
            self._t_indptr = t.indptr
            self._t_indices = t.indices
        return _fast_compressed(
            sp.csr_matrix,
            m.data[self._order],
            self._t_indices,
            self._t_indptr,
            (m.shape[1], m.shape[0]),
        )


def cached_vstack_csr(cache: CachedBmat, blocks: Sequence[sp.spmatrix]) -> sp.csr_matrix:
    """Structure-cached ``sp.vstack(blocks, format="csr")``."""
    return cache.assemble([[blk] for blk in blocks])


def row_scaled_csr(matrix: sp.csr_matrix, scale: np.ndarray, out: Optional[np.ndarray] = None) -> sp.csr_matrix:
    """Row-scale a canonical CSR matrix without symbolic work.

    Equivalent to ``sp.diags(scale) @ matrix`` (same values, same structure)
    but a pure data operation.  Returns a CSR matrix sharing ``matrix``'s
    index arrays whose row ``i`` is ``scale[i] * matrix[i]``.  ``out``
    (length ``nnz``, matching dtype) is reused as the data buffer when
    supplied, avoiding a per-call allocation.
    """
    matrix = _canonical_csr(matrix)
    per_row = np.diff(matrix.indptr)
    data = np.multiply(matrix.data, np.repeat(scale, per_row), out=out)
    return _fast_compressed(
        sp.csr_matrix, data, matrix.indices, matrix.indptr, matrix.shape
    )


def col_scaled_csr(matrix: sp.csr_matrix, scale: np.ndarray) -> sp.csr_matrix:
    """Column-scale a canonical CSR matrix without symbolic work.

    Equivalent to ``matrix @ sp.diags(scale)`` (same values, same structure)
    but a pure data operation; the result shares ``matrix``'s index arrays.
    """
    matrix = _canonical_csr(matrix)
    return _fast_compressed(
        sp.csr_matrix,
        matrix.data * scale[matrix.indices],
        matrix.indices,
        matrix.indptr,
        matrix.shape,
    )


# --------------------------------------------------------------- batch plans
def csr_rows(matrix: sp.csr_matrix) -> np.ndarray:
    """Row index of every stored nonzero of a canonical CSR matrix."""
    return np.repeat(np.arange(matrix.shape[0]), np.diff(matrix.indptr))


def csr_from_template(template: sp.csr_matrix, data: np.ndarray) -> sp.csr_matrix:
    """Canonical CSR matrix with ``template``'s pattern and fresh ``data``.

    Shares the template's index arrays (read-only contract); this is how one
    slot of a batched ``(B, nnz)`` data plane is materialised as a matrix.
    """
    return _fast_compressed(
        sp.csr_matrix, np.asarray(data), template.indices, template.indptr, template.shape
    )


def csc_from_template(template: sp.csc_matrix, data: np.ndarray) -> sp.csc_matrix:
    """Canonical CSC matrix with ``template``'s pattern and fresh ``data``.

    CSC counterpart of :func:`csr_from_template`; shares the template's index
    arrays (read-only contract).
    """
    return _fast_compressed(
        sp.csc_matrix, np.asarray(data), template.indices, template.indptr, template.shape
    )


class BlockDiagPlan:
    """Index plan of a block-diagonal matrix built from same-pattern blocks.

    ``B`` blocks of shape ``(m, n)`` sharing one compressed sparsity pattern
    stack into a ``(B·m, B·n)`` block-diagonal matrix whose index arrays
    depend only on the pattern and ``B``: the major-axis pointer is the
    block's, tiled, and the minor-axis indices are the block's shifted by the
    block offset.  The plan computes those arrays once; :meth:`matrix` then
    materialises the big matrix from a ``(B, nnz)`` data plane as a pure
    ``ravel`` — for both CSR and CSC the big matrix's data in storage order is
    exactly the per-block data arrays concatenated, so per-block numerics of
    any row-local (CSR) or column-local (CSC) kernel match the individual
    blocks bit for bit.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        shape: Tuple[int, int],
        blocks: int,
        format: str = "csc",
    ):
        if blocks < 1:
            raise ValueError("blocks must be positive")
        if format not in ("csr", "csc"):
            raise ValueError("format must be 'csr' or 'csc'")
        m, n = int(shape[0]), int(shape[1])
        self.blocks = int(blocks)
        self.nnz = int(indices.size)
        self.format = format
        # SuperLU and the scipy sparse kernels expect 32-bit indices whenever
        # the matrix fits; only genuinely huge stacks get 64-bit arrays.
        major, minor = (m, n) if format == "csr" else (n, m)
        if max(blocks * self.nnz, blocks * max(m, n)) <= np.iinfo(np.int32).max:
            dtype = np.int32
        else:  # pragma: no cover - beyond SuperLU's practical range
            dtype = np.int64
        offsets = (np.arange(blocks, dtype=dtype) * minor)[:, None]
        self._indices = (indices.astype(dtype, copy=False)[None, :] + offsets).ravel()
        per_major = np.diff(indptr).astype(dtype, copy=False)
        big_ptr = np.empty(blocks * major + 1, dtype=dtype)
        big_ptr[0] = 0
        np.cumsum(np.tile(per_major, blocks), out=big_ptr[1:])
        self._indptr = big_ptr
        self.shape = (blocks * m, blocks * n)

    def matrix(self, data_plane: np.ndarray):
        """The block-diagonal matrix holding ``data_plane``'s blocks.

        ``data_plane`` is ``(blocks, nnz)``: row ``b`` is block ``b``'s data
        in the pattern's storage order.  The returned matrix shares the plan's
        index arrays (read-only).
        """
        data_plane = np.ascontiguousarray(data_plane)
        if data_plane.shape != (self.blocks, self.nnz):
            raise ValueError(
                f"data plane must be ({self.blocks}, {self.nnz}), got {data_plane.shape}"
            )
        cls = sp.csr_matrix if self.format == "csr" else sp.csc_matrix
        return _fast_compressed(
            cls, data_plane.reshape(-1), self._indices, self._indptr, self.shape
        )


def _pattern_keys(matrix: sp.csr_matrix) -> np.ndarray:
    """Row-major linear positions of the nonzeros (sorted for canonical CSR)."""
    return csr_rows(matrix).astype(np.int64) * matrix.shape[1] + matrix.indices


def pattern_union(matrices: Sequence[sp.spmatrix]) -> Tuple[sp.csr_matrix, List[np.ndarray]]:
    """Union sparsity pattern of same-shape matrices plus scatter positions.

    Returns ``(template, positions)`` where ``template`` is a canonical CSR
    matrix holding the union pattern (data zeroed) and ``positions[i]`` maps
    matrix ``i``'s nonzeros onto template storage positions, so batched data
    planes can be accumulated with ``out[:, positions[i]] += data_i``.
    """
    canon = [_canonical_csr(m) for m in matrices]
    if not canon:
        raise ValueError("pattern_union needs at least one matrix")
    shape = canon[0].shape
    if any(m.shape != shape for m in canon):
        raise ValueError("pattern_union requires matrices of identical shape")
    acc = None
    for m in canon:
        part = _fast_compressed(
            sp.csr_matrix, np.ones(m.nnz), m.indices, m.indptr, shape
        )
        acc = part if acc is None else acc + part
    template = _canonical_csr(acc)
    if template is acc and len(canon) == 1:
        template = acc.copy()
    template.data = np.zeros(template.nnz)
    template.has_canonical_format = True
    keys = _pattern_keys(template)
    positions = [
        np.searchsorted(keys, _pattern_keys(m)).astype(np.intp) for m in canon
    ]
    return template, positions


def symmetric_lower_map(
    indptr: np.ndarray, indices: np.ndarray, n: int, perm: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Lower-triangle pattern of the symmetric permutation of a CSC pattern.

    For the ``n × n`` CSC pattern ``(indptr, indices)`` of a (structurally
    symmetric or near-symmetric) matrix ``A`` and an elimination order
    ``perm`` (``perm[j]`` = original index eliminated at step ``j``), the
    permuted matrix is ``B[i, j] = A[perm[i], perm[j]]``.  Returns
    ``(low_indptr, low_indices, source)`` describing the lower triangle
    (diagonal included) of the *symmetrised* pattern of ``B`` in canonical CSC
    order, where ``source[q]`` is the storage position of the original CSC
    entry whose value populates lower entry ``q``.

    When both ``B[i, j]`` and its mirror ``B[j, i]`` are stored, the entry
    that already lies in ``B``'s lower triangle is preferred — a
    deterministic choice, so same-pattern replays gather identical values
    even for matrices that are symmetric only up to roundoff.
    """
    indptr = np.asarray(indptr)
    indices = np.asarray(indices)
    nnz = int(indices.size)
    inv = np.empty(n, dtype=np.int64)
    inv[np.asarray(perm, dtype=np.int64)] = np.arange(n, dtype=np.int64)
    cols = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    # Coordinates in the permuted matrix B.
    bi = inv[indices]
    bj = inv[cols]
    low_row = np.maximum(bi, bj)
    low_col = np.minimum(bi, bj)
    key = low_col * n + low_row
    direct = bi >= bj  # the entry already lies in B's lower triangle
    order = np.lexsort((~direct, key))  # within a key group, direct first
    key_sorted = key[order]
    first = np.ones(nnz, dtype=bool)
    first[1:] = key_sorted[1:] != key_sorted[:-1]
    chosen = order[first]
    unique_keys = key_sorted[first]
    low_cols = unique_keys // n
    low_rows = unique_keys % n
    low_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(low_cols, minlength=n), out=low_indptr[1:])
    return low_indptr, low_rows.astype(np.int64), chosen.astype(np.intp)


def transpose_plan(matrix: sp.spmatrix) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Data permutation realising the transpose of a fixed CSR pattern.

    Returns ``(order, t_indptr, t_indices)`` such that for any data plane
    ``D`` of shape ``(B, nnz)`` on ``matrix``'s pattern, ``D[:, order]`` is the
    data of ``matrix.T`` in canonical CSR order with index arrays
    ``(t_indptr, t_indices)``.
    """
    m = _canonical_csr(matrix)
    coded = _fast_compressed(
        sp.csr_matrix,
        np.arange(1, m.nnz + 1, dtype=float),
        m.indices,
        m.indptr,
        m.shape,
    )
    t = coded.T.tocsr()
    t.sort_indices()
    return t.data.astype(np.intp) - 1, t.indptr, t.indices


def batched_row_sums(data: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-row sums of a batched data plane: ``out[b, i] = Σ_k∈row(i) data[b, k]``.

    ``data`` is ``(B, nnz)`` on a CSR pattern described by ``indptr``; empty
    rows sum to zero.  Summation runs in storage order (matching scipy's CSR
    reductions), keeping batched results bit-comparable with scalar ones.
    """
    data = np.asarray(data)
    starts = np.asarray(indptr[:-1])
    out = np.zeros((data.shape[0], starts.size), dtype=data.dtype)
    valid = starts < np.asarray(indptr[1:])
    if np.any(valid):
        # reduceat over the non-empty starts only: consecutive filtered starts
        # are exactly one stored row apart, so each segment is one row.
        out[:, valid] = np.add.reduceat(data, starts[valid], axis=1)
    return out


def batched_matvec(
    data: np.ndarray, indptr: np.ndarray, indices: np.ndarray, X: np.ndarray
) -> np.ndarray:
    """Per-slot CSR matvec ``Y[b] = A_b @ X[b]`` for a shared pattern.

    ``data`` is the ``(B, nnz)`` plane of the per-slot matrices and ``X`` the
    ``(B, n_cols)`` right-hand sides.
    """
    return batched_row_sums(data * X[:, indices], indptr)


class MatmulPlan:
    """Fixed-pattern batched sparse matrix product ``C_b = A_b @ B_b``.

    Both factors keep a fixed sparsity pattern while their numeric data varies
    per slot, so the product's pattern — and, for every stored output nonzero,
    the set of ``(A_nnz, B_nnz)`` pairs contributing to it — is constant.  The
    constructor expands that multiplication plan once (pair gather indices
    grouped by output position); :meth:`multiply` replays it on ``(B, nnz)``
    data planes as one multiply plus one grouped reduction.
    """

    def __init__(self, A: sp.spmatrix, B: sp.spmatrix):
        A = _canonical_csr(A)
        B = _canonical_csr(B)
        if A.shape[1] != B.shape[0]:
            raise ValueError("inner dimensions of the product do not match")
        m, n = A.shape[0], B.shape[1]
        counts = np.diff(B.indptr)
        rep = counts[A.indices]
        total = int(rep.sum())
        left = np.repeat(np.arange(A.nnz, dtype=np.intp), rep)
        pair_offsets = np.zeros(A.nnz, dtype=np.intp)
        np.cumsum(rep[:-1], out=pair_offsets[1:])
        right = (
            np.arange(total, dtype=np.intp)
            - np.repeat(pair_offsets, rep)
            + np.repeat(B.indptr[A.indices].astype(np.intp), rep)
        )
        out_row = np.repeat(csr_rows(A), rep)
        out_col = B.indices[right]
        keys = out_row.astype(np.int64) * n + out_col
        order = np.argsort(keys, kind="stable")
        left, right, keys = left[order], right[order], keys[order]
        fresh = np.ones(total, dtype=bool)
        fresh[1:] = keys[1:] != keys[:-1]
        self._left = left
        self._right = right
        self._group_starts = np.flatnonzero(fresh)
        unique_keys = keys[self._group_starts]
        rows = (unique_keys // n).astype(np.int64)
        cols = (unique_keys % n).astype(np.int64)
        indptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=m), out=indptr[1:])
        template = sp.csr_matrix(
            (np.zeros(unique_keys.size), cols, indptr), shape=(m, n)
        )
        template.has_canonical_format = True  # built sorted and duplicate-free
        #: Canonical CSR pattern of the product (data zeroed, read-only).
        self.template = template

    def multiply(self, Adata: np.ndarray, Bdata: np.ndarray) -> np.ndarray:
        """Product data planes: ``(B, nnz_A) × (B, nnz_B) → (B, nnz_C)``.

        Either factor may be a ``(1, nnz)`` constant plane; broadcasting
        across the batch axis is handled by NumPy.
        """
        Adata = np.atleast_2d(np.asarray(Adata))
        Bdata = np.atleast_2d(np.asarray(Bdata))
        n_out = self.template.nnz
        batch = max(Adata.shape[0], Bdata.shape[0])
        if self._left.size == 0:
            dtype = np.result_type(Adata.dtype, Bdata.dtype)
            return np.zeros((batch, n_out), dtype=dtype)
        contrib = Adata[:, self._left] * Bdata[:, self._right]
        return np.add.reduceat(contrib, self._group_starts, axis=1)
