"""Logging helpers.

The library never configures the root logger; it only creates namespaced
loggers under ``repro.*`` so applications embedding the library keep control
of handlers and levels.
"""

from __future__ import annotations

import logging


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under ``repro``.

    ``get_logger("mips")`` returns the ``repro.mips`` logger.  Fully-qualified
    names (already starting with ``repro``) are used as-is.
    """
    if not name.startswith("repro"):
        name = f"repro.{name}"
    logger = logging.getLogger(name)
    logger.addHandler(logging.NullHandler())
    return logger
