"""Lightweight timing utilities used by the benchmark harness and the
online driver's runtime breakdown (Fig. 5)."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass
class Timer:
    """Accumulating named timer.

    ``Timer`` collects wall-clock durations per label so the online driver can
    report the pre-processing / Newton-update / inference / restart breakdown
    of Fig. 5 without sprinkling ``time.perf_counter`` calls around.
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def section(self, label: str) -> Iterator[None]:
        """Context manager accumulating elapsed time under ``label``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.add(label, elapsed)

    def add(self, label: str, seconds: float) -> None:
        """Add ``seconds`` to ``label``'s accumulated total."""
        self.totals[label] = self.totals.get(label, 0.0) + float(seconds)
        self.counts[label] = self.counts.get(label, 0) + 1

    def total(self, label: str) -> float:
        """Accumulated seconds for ``label`` (0.0 if never recorded)."""
        return self.totals.get(label, 0.0)

    def overall(self) -> float:
        """Sum of all recorded sections."""
        return float(sum(self.totals.values()))

    def as_dict(self) -> Dict[str, float]:
        """Copy of the per-label totals."""
        return dict(self.totals)

    def merge(self, other: "Timer") -> None:
        """Fold another timer's totals into this one."""
        for label, seconds in other.totals.items():
            self.add(label, seconds)
        for label, count in other.counts.items():
            # ``add`` already incremented counts by one per label; adjust so the
            # merged count reflects the source timer's true call count.
            self.counts[label] += count - 1


@contextmanager
def timed() -> Iterator["_TimedResult"]:
    """Context manager yielding an object whose ``.seconds`` is filled on exit."""
    result = _TimedResult()
    start = time.perf_counter()
    try:
        yield result
    finally:
        result.seconds = time.perf_counter() - start


class _TimedResult:
    """Mutable holder for :func:`timed`."""

    def __init__(self) -> None:
        self.seconds: float = 0.0
