"""Random-number-generator helpers.

Every stochastic component in the library accepts either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None``.  :func:`ensure_rng`
normalises all three into a ``Generator`` so results are reproducible when a
seed is supplied and independent when one is not.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

RNGLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: RNGLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, a ``SeedSequence`` or an
        existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: RNGLike, n: int) -> Sequence[np.random.Generator]:
    """Deterministically derive ``n`` independent generators from ``seed``.

    Used by the parallel scenario runner so each worker draws from its own
    stream regardless of scheduling order.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if isinstance(seed, np.random.Generator):
        seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    elif isinstance(seed, np.random.SeedSequence):
        seq = seed
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def derive_seed(seed: Optional[int], index: int) -> int:
    """Return a stable 32-bit seed derived from ``seed`` and ``index``."""
    base = 0 if seed is None else int(seed)
    mixed = np.random.SeedSequence([base, int(index)]).generate_state(1)[0]
    return int(mixed)
