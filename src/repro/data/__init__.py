"""Dataset generation for the offline training phase."""

from repro.data.dataset import OPFDataset, TASK_NAMES, generate_dataset

__all__ = ["OPFDataset", "TASK_NAMES", "generate_dataset"]
