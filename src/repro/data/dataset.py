"""Training-data containers and ground-truth generation.

The offline phase of Smart-PGSim samples load scenarios, solves each of them
with the exact MIPS solver and collects the converged primal/dual variables as
supervision targets.  :func:`generate_dataset` implements that collection over
the same pooled batch-solve path the serving engine uses (cold starts, one
persistent solver worker per process) and :class:`OPFDataset` stores the
result as flat NumPy arrays (one row per scenario) ready for model training.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.grid.components import Case
from repro.grid.perturb import CorrelatedLoadSampler, iter_load_samples, sample_loads
from repro.opf.model import OPFModel, VariableIndex
from repro.opf.solver import OPFOptions
from repro.parallel.pool import EXECUTION_MODES, SolverFleet, run_scenario_sweep
from repro.parallel.scenarios import Scenario, ScenarioSet
from repro.parallel.scheduler import SCHEDULES
from repro.utils.logging import get_logger
from repro.utils.rng import RNGLike

LOGGER = get_logger("data")

#: Names of the seven prediction tasks, in canonical order.
TASK_NAMES: Tuple[str, ...] = ("Va", "Vm", "Pg", "Qg", "lam", "z", "mu")


@dataclass
class OPFDataset:
    """Supervised dataset for one test system.

    ``inputs`` holds the per-scenario feature vector ``[Pd, Qd]`` in p.u.
    (2·nb columns); ``targets`` maps each task name to an ``(n_samples, dim)``
    array of raw (un-normalised) solver values; ``objectives`` holds the
    ground-truth cost ``f0`` used by the cost-consistency physics loss, and
    ``iterations`` / ``solve_seconds`` record the cold-start solver effort so
    the evaluation can compute speedups without re-solving everything.
    """

    case_name: str
    inputs: np.ndarray
    targets: Dict[str, np.ndarray]
    objectives: np.ndarray
    iterations: np.ndarray
    solve_seconds: np.ndarray
    Pd_mw: np.ndarray
    Qd_mw: np.ndarray
    base_mva: float

    # --------------------------------------------------------------- basic API
    @property
    def n_samples(self) -> int:
        """Number of scenarios in the dataset."""
        return int(self.inputs.shape[0])

    @property
    def n_features(self) -> int:
        """Input dimensionality (2·nb)."""
        return int(self.inputs.shape[1])

    def task_dim(self, task: str) -> int:
        """Output dimensionality of ``task``."""
        return int(self.targets[task].shape[1])

    def subset(self, index: np.ndarray) -> "OPFDataset":
        """Row-indexed subset (used for train/validation splits)."""
        index = np.asarray(index)
        return OPFDataset(
            case_name=self.case_name,
            inputs=self.inputs[index],
            targets={k: v[index] for k, v in self.targets.items()},
            objectives=self.objectives[index],
            iterations=self.iterations[index],
            solve_seconds=self.solve_seconds[index],
            Pd_mw=self.Pd_mw[index],
            Qd_mw=self.Qd_mw[index],
            base_mva=self.base_mva,
        )

    def split(self, train_fraction: float = 0.8, seed: RNGLike = 0) -> Tuple["OPFDataset", "OPFDataset"]:
        """Shuffled train/validation split (default 80/20 as in the paper)."""
        if not 0 < train_fraction < 1:
            raise ValueError("train_fraction must be in (0, 1)")
        rng = np.random.default_rng(seed)
        perm = rng.permutation(self.n_samples)
        n_train = int(round(train_fraction * self.n_samples))
        n_train = min(max(n_train, 1), self.n_samples - 1) if self.n_samples > 1 else 1
        return self.subset(perm[:n_train]), self.subset(perm[n_train:])

    def batches(self, batch_size: int, seed: RNGLike = None, shuffle: bool = True):
        """Yield row-index arrays forming mini-batches."""
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        order = np.arange(self.n_samples)
        if shuffle:
            np.random.default_rng(seed).shuffle(order)
        for start in range(0, self.n_samples, batch_size):
            yield order[start : start + batch_size]

    # ------------------------------------------------------------- persistence
    def save(self, path: Union[str, Path]) -> Path:
        """Write the dataset to an ``.npz`` file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "case_name": np.array(self.case_name),
            "inputs": self.inputs,
            "objectives": self.objectives,
            "iterations": self.iterations,
            "solve_seconds": self.solve_seconds,
            "Pd_mw": self.Pd_mw,
            "Qd_mw": self.Qd_mw,
            "base_mva": np.array(self.base_mva),
        }
        for task, values in self.targets.items():
            payload[f"target_{task}"] = values
        np.savez(path, **payload)
        return path

    @staticmethod
    def load(path: Union[str, Path]) -> "OPFDataset":
        """Read a dataset previously written by :meth:`save`."""
        with np.load(Path(path), allow_pickle=False) as data:
            targets = {
                key[len("target_") :]: data[key].copy()
                for key in data.files
                if key.startswith("target_")
            }
            return OPFDataset(
                case_name=str(data["case_name"]),
                inputs=data["inputs"].copy(),
                targets=targets,
                objectives=data["objectives"].copy(),
                iterations=data["iterations"].copy(),
                solve_seconds=data["solve_seconds"].copy(),
                Pd_mw=data["Pd_mw"].copy(),
                Qd_mw=data["Qd_mw"].copy(),
                base_mva=float(data["base_mva"]),
            )


def _batched(iterable, batch: int):
    """Chop any sample iterable into lists of at most ``batch`` items."""
    block: list = []
    for item in iterable:
        block.append(item)
        if len(block) == batch:
            yield block
            block = []
    if block:
        yield block


def generate_dataset(
    case: Case,
    n_samples: int,
    variation: float = 0.1,
    seed: RNGLike = 0,
    options: Optional[OPFOptions] = None,
    model: Optional[OPFModel] = None,
    drop_failures: bool = True,
    n_workers: int = 1,
    execution: str = "batch",
    schedule: str = "static",
    microbatch: Optional[int] = None,
    sampler: Optional[CorrelatedLoadSampler] = None,
    stream_batch: Optional[int] = None,
) -> OPFDataset:
    """Generate ground-truth data by solving sampled scenarios with MIPS.

    The cold-start solves run through the same pooled batch-solve path as the
    serving engine: ``n_workers=1`` solves in-process (reusing ``model`` when
    provided), larger counts distribute the scenarios over persistent solver
    workers, and ``execution="batch"`` (the default) solves each worker's
    chunk in lockstep (see :func:`repro.opf.batch.solve_opf_batch`), which
    reproduces the per-scenario path's trajectories — identical iteration
    counts, solutions and objectives at solver precision (batched callback
    evaluation changes float associativity, so not bit-for-bit) — several
    times faster.  ``execution="scenario"`` keeps the one-solve-at-a-time
    behaviour.  Scenarios whose cold-start solve
    fails to converge are dropped (they are rare for the built-in cases at
    ±10 % load variation), matching the paper's use of converged solutions as
    supervision signal.

    ``schedule`` picks the fleet's dispatch policy (``"static"`` cost-balanced
    chunks, the default, or ``"steal"`` for the elastic micro-batch queue —
    see :mod:`repro.parallel.scheduler`); ``microbatch`` bounds the elastic
    micro-batch size.  The default stays ``"static"`` so the batch-mode
    ground truth remains bit-pinned to the PR 4 semantics tests.

    **Timing semantics.**  ``solve_seconds`` records each scenario's
    *additive wall share* of its solve: in scenario mode that is simply the
    per-solve wall time; in batch mode every lockstep iteration's wall time
    is split evenly over the scenarios active in it, so the values sum to the
    lockstep wall and stay directly comparable with (and honestly cheaper
    than) scalar per-solve times.  The Fig. 4 speedup ratios consume these as
    the cold-MIPS reference, which makes the reported speedups *conservative*:
    warm starts are measured against the strongest available cold baseline
    rather than the slow per-scenario loop.

    **Stochastic streams.**  ``sampler`` swaps the paper's independent
    per-bus draws for spatially-correlated ones
    (:class:`~repro.grid.perturb.CorrelatedLoadSampler`), and ``stream_batch``
    feeds the sweep in bounded batches through one persistent fleet instead of
    materialising every load array up front — the load-side memory footprint
    becomes ``O(stream_batch)``, not ``O(n_samples)``.  Sampler draws are
    keyed per scenario, so the generated dataset is bit-identical for any
    ``stream_batch`` (including the unbatched default) — the streamed blocks
    always dispatch elastically (keyed lockstep groups, whatever ``schedule``
    says), because the static path's singleton scalar shortcut would tie the
    numeric path to the chopping.  Without either knob, the classic
    materialised single-sweep path runs unchanged (bit-pinned by the PR 4
    semantics tests).
    """
    options = options or OPFOptions()
    if execution not in EXECUTION_MODES:
        raise ValueError(f"execution must be one of {EXECUTION_MODES}")
    if schedule not in SCHEDULES:
        raise ValueError(f"schedule must be one of {SCHEDULES}")
    if stream_batch is not None and stream_batch < 1:
        raise ValueError("stream_batch must be positive")
    if sampler is not None and sampler.case.n_bus != case.n_bus:
        raise ValueError(
            f"sampler was built for a {sampler.case.n_bus}-bus case, "
            f"got {case.n_bus} buses"
        )

    idx = model.idx if model is not None else VariableIndex(nb=case.n_bus, ng=case.n_gen)
    rows_in, pd_rows, qd_rows = [], [], []
    rows_targets: Dict[str, list] = {task: [] for task in TASK_NAMES}
    objectives, iterations, seconds = [], [], []

    def collect(samples, outcomes) -> None:
        for sample, outcome in zip(samples, outcomes):
            if not outcome.success:
                LOGGER.warning("scenario %d failed to converge; %s", sample.scenario_id,
                               "dropping" if drop_failures else "keeping")
                if drop_failures:
                    continue
            solution = outcome.solution
            assert solution is not None
            parts = idx.split(solution.x)
            rows_in.append(sample.feature_vector() / case.base_mva)
            for task in ("Va", "Vm", "Pg", "Qg"):
                rows_targets[task].append(parts[task].copy())
            rows_targets["lam"].append(solution.lam)
            rows_targets["z"].append(solution.z)
            rows_targets["mu"].append(solution.mu)
            objectives.append(outcome.objective)
            iterations.append(outcome.iterations)
            seconds.append(outcome.solve_seconds)
            pd_rows.append(sample.Pd)
            qd_rows.append(sample.Qd)

    if sampler is None and stream_batch is None:
        samples = sample_loads(case, n_samples, variation=variation, seed=seed)
        scenario_set = ScenarioSet(
            case.name,
            [Scenario(i, sample.Pd, sample.Qd) for i, sample in enumerate(samples)],
            n_bus=case.n_bus,
        )
        sweep = run_scenario_sweep(
            case,
            scenario_set,
            n_workers=n_workers,
            options=options,
            collect_solutions=True,
            model=model if n_workers == 1 else None,
            execution=execution,
            schedule=schedule,
            microbatch=microbatch,
        )
        collect(samples, sweep.outcomes)
    else:
        batch = stream_batch if stream_batch is not None else max(int(n_samples), 1)
        if sampler is not None:
            if not (seed is None or isinstance(seed, (int, np.integer))):
                raise ValueError(
                    "the correlated-sampler path needs an integer (or None) "
                    "seed — per-scenario draws are keyed on it"
                )
            blocks = sampler.stream(
                n_samples, batch, seed=None if seed is None else int(seed)
            )
        else:
            blocks = _batched(
                iter_load_samples(case, n_samples, variation=variation, seed=seed),
                batch,
            )
        # The streamed path always dispatches elastically: keyed topology
        # groups lockstep even as singletons, so chopping the stream cannot
        # flip a scenario between the scalar and lockstep numeric paths (the
        # static chunk path's singleton shortcut would break the documented
        # bit-invariance for stream_batch=1).
        with SolverFleet(
            case,
            options=options,
            n_workers=n_workers,
            collect_solutions=True,
            model=model if n_workers == 1 else None,
            execution=execution,
            schedule="steal",
            microbatch=microbatch,
        ) as fleet:
            for block in blocks:
                scenario_set = ScenarioSet(
                    case.name,
                    [Scenario(s.scenario_id, s.Pd, s.Qd) for s in block],
                    n_bus=case.n_bus,
                )
                collect(block, fleet.solve(scenario_set).outcomes)

    if not rows_in:
        raise RuntimeError(f"no scenario of {case.name} converged; cannot build a dataset")

    return OPFDataset(
        case_name=case.name,
        inputs=np.vstack(rows_in),
        targets={task: np.vstack(rows) for task, rows in rows_targets.items()},
        objectives=np.asarray(objectives, dtype=float),
        iterations=np.asarray(iterations, dtype=float),
        solve_seconds=np.asarray(seconds, dtype=float),
        Pd_mw=np.vstack(pd_rows),
        Qd_mw=np.vstack(qd_rows),
        base_mva=case.base_mva,
    )
