"""Complex power injections, branch flows and mismatch equations.

All quantities are in per-unit on the system MVA base unless stated otherwise.
Voltages are represented either as a complex phasor vector ``V`` or as the
polar pair ``(Va, Vm)`` in radians / p.u.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.grid.components import Case
from repro.powerflow.ybus import AdmittanceMatrices


def polar_to_complex(Va: np.ndarray, Vm: np.ndarray) -> np.ndarray:
    """Complex voltage phasors from angle (rad) and magnitude (p.u.)."""
    return Vm * np.exp(1j * Va)


def bus_injection(Ybus: sp.spmatrix, V: np.ndarray) -> np.ndarray:
    """Complex power injected *into the network* at each bus: ``S = V ⊙ conj(Ybus V)``."""
    return V * np.conj(Ybus @ V)


def bus_injection_batch(Ybus: sp.spmatrix, V: np.ndarray) -> np.ndarray:
    """Batch-axis :func:`bus_injection`: ``V`` is ``(B, nb)``, one row per slot.

    The admittance matrix is shared across the batch (same network, many
    voltage states), so the matvec becomes one sparse-times-dense product.
    """
    return V * np.conj((Ybus @ V.T).T)


def branch_flows(
    adm: AdmittanceMatrices, V: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Complex power flows ``(Sf, St)`` at the from / to end of every branch."""
    Sf = (adm.Cf @ V) * np.conj(adm.Yf @ V)
    St = (adm.Ct @ V) * np.conj(adm.Yt @ V)
    return Sf, St


def gen_injection(case: Case, Cg: sp.spmatrix, Pg: np.ndarray, Qg: np.ndarray) -> np.ndarray:
    """Complex generator injection aggregated per bus, in p.u.

    ``Pg``/``Qg`` are per-generator outputs in p.u.; out-of-service units are
    masked out.
    """
    status = (case.gen.status > 0).astype(float)
    return Cg @ ((Pg + 1j * Qg) * status)


def load_injection(case: Case, Pd: np.ndarray | None = None, Qd: np.ndarray | None = None) -> np.ndarray:
    """Complex load per bus in p.u. (defaults to the case's nominal load)."""
    Pd = case.bus.Pd if Pd is None else np.asarray(Pd, dtype=float)
    Qd = case.bus.Qd if Qd is None else np.asarray(Qd, dtype=float)
    return (Pd + 1j * Qd) / case.base_mva


def power_balance_mismatch(
    case: Case,
    adm: AdmittanceMatrices,
    V: np.ndarray,
    Pg: np.ndarray,
    Qg: np.ndarray,
    Pd: np.ndarray | None = None,
    Qd: np.ndarray | None = None,
) -> np.ndarray:
    """AC nodal power-balance mismatch ``S_bus(V) + S_load - C_g S_gen`` (complex, p.u.).

    A feasible operating point drives both the real and the imaginary parts to
    zero (Eqn. 2 of the paper).  The sign convention matches MATPOWER's
    ``opf_power_balance_fcn``: positive mismatch means the network plus loads
    consume more than the generators inject.
    """
    Sbus = bus_injection(adm.Ybus, V)
    Sload = load_injection(case, Pd, Qd)
    Sgen = gen_injection(case, adm.Cg, Pg, Qg)
    return Sbus + Sload - Sgen


def mismatch_norm(mis: np.ndarray) -> float:
    """Infinity norm of the stacked real/reactive mismatch."""
    return float(np.max(np.abs(np.concatenate([mis.real, mis.imag]))))
