"""Newton–Raphson AC power flow.

The power-flow solver is used as a substrate: for validating OPF solutions
(re-dispatching the OPF set points must reproduce the same operating state),
for the examples, and as the engine behind the synthetic-case sanity checks.
It follows the textbook polar-coordinate Newton method with the full Jacobian
assembled from :func:`repro.powerflow.derivatives.dSbus_dV`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.grid.components import Case, PQ, PV, REF
from repro.powerflow.derivatives import dSbus_dV
from repro.powerflow.injections import bus_injection, polar_to_complex
from repro.powerflow.ybus import AdmittanceMatrices, make_ybus


@dataclass
class PowerFlowResult:
    """Outcome of a Newton power-flow solve."""

    converged: bool
    iterations: int
    Vm: np.ndarray
    Va: np.ndarray
    Sbus: np.ndarray
    Sf: np.ndarray
    St: np.ndarray
    max_mismatch: float
    history: List[float] = field(default_factory=list)

    @property
    def V(self) -> np.ndarray:
        """Complex bus voltages."""
        return polar_to_complex(self.Va, self.Vm)


def _scheduled_injection(case: Case, adm: AdmittanceMatrices) -> np.ndarray:
    """Net scheduled complex injection per bus (generation minus load), p.u."""
    status = (case.gen.status > 0).astype(float)
    Sg = adm.Cg @ ((case.gen.Pg + 1j * case.gen.Qg) * status) / case.base_mva
    Sd = (case.bus.Pd + 1j * case.bus.Qd) / case.base_mva
    return Sg - Sd


def newton_power_flow(
    case: Case,
    adm: Optional[AdmittanceMatrices] = None,
    tol: float = 1e-8,
    max_iter: int = 30,
    flat_start: bool = False,
) -> PowerFlowResult:
    """Solve the AC power flow for ``case``.

    PV-bus voltage magnitudes are held at the generator set points ``Vg``;
    the reference bus holds both its angle and magnitude.  Returns a
    :class:`PowerFlowResult`; ``converged`` is ``False`` when the mismatch norm
    fails to drop below ``tol`` within ``max_iter`` iterations.
    """
    adm = adm or make_ybus(case)
    nb = case.n_bus

    bus_type = case.bus.bus_type
    ref = np.flatnonzero(bus_type == REF)
    pv = np.flatnonzero(bus_type == PV)
    pq = np.flatnonzero(bus_type == PQ)
    if ref.size != 1:
        raise ValueError("power flow requires exactly one reference bus")

    # Initial voltages: flat or from the case, with PV/REF magnitudes pinned to Vg.
    Vm = np.ones(nb) if flat_start else case.bus.Vm.copy()
    Va = np.zeros(nb) if flat_start else np.deg2rad(case.bus.Va)
    gbus = case.gen_bus_indices()
    on = case.gen.status > 0
    Vm[gbus[on]] = case.gen.Vg[on]

    Ssched = _scheduled_injection(case, adm)

    pvpq = np.concatenate([pv, pq])
    history: List[float] = []
    converged = False
    iterations = 0

    V = polar_to_complex(Va, Vm)
    mis = bus_injection(adm.Ybus, V) - Ssched
    F = np.concatenate([mis[pvpq].real, mis[pq].imag])
    norm = float(np.max(np.abs(F))) if F.size else 0.0
    history.append(norm)
    if norm < tol:
        converged = True

    while not converged and iterations < max_iter:
        dSa, dSm = dSbus_dV(adm.Ybus, V)
        J11 = dSa[np.ix_(pvpq, pvpq)].real
        J12 = dSm[np.ix_(pvpq, pq)].real
        J21 = dSa[np.ix_(pq, pvpq)].imag
        J22 = dSm[np.ix_(pq, pq)].imag
        J = sp.bmat([[J11, J12], [J21, J22]], format="csc")

        dx = spla.spsolve(J, F)
        n_pvpq = pvpq.size
        Va[pvpq] -= dx[:n_pvpq]
        Vm[pq] -= dx[n_pvpq:]

        V = polar_to_complex(Va, Vm)
        mis = bus_injection(adm.Ybus, V) - Ssched
        F = np.concatenate([mis[pvpq].real, mis[pq].imag])
        norm = float(np.max(np.abs(F))) if F.size else 0.0
        iterations += 1
        history.append(norm)
        if norm < tol:
            converged = True

    Sbus = bus_injection(adm.Ybus, V)
    Sf = (adm.Cf @ V) * np.conj(adm.Yf @ V)
    St = (adm.Ct @ V) * np.conj(adm.Yt @ V)
    return PowerFlowResult(
        converged=converged,
        iterations=iterations,
        Vm=Vm,
        Va=Va,
        Sbus=Sbus,
        Sf=Sf,
        St=St,
        max_mismatch=norm,
        history=history,
    )
