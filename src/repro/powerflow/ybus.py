"""Admittance-matrix and connection-matrix construction.

All matrices are SciPy CSR sparse matrices built with vectorised expressions;
these are the building blocks every other power-flow/OPF kernel uses.

Conventions follow MATPOWER: branch ``ratio == 0`` denotes a transmission line
(tap ratio 1), the line-charging susceptance ``b`` is the *total* charging and
is split evenly between the two branch ends, and bus shunts ``Gs + jBs`` are
specified in MW/MVAr consumed at 1.0 p.u. voltage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.grid.components import Case


@dataclass(frozen=True)
class AdmittanceMatrices:
    """Bus and branch admittance matrices plus connection matrices.

    Attributes
    ----------
    Ybus:
        ``(nb, nb)`` complex bus admittance matrix.
    Yf, Yt:
        ``(nl, nb)`` branch admittance matrices such that the complex current
        injected at the from / to end of branch ``l`` is ``(Yf @ V)[l]`` /
        ``(Yt @ V)[l]``.
    Cf, Ct:
        ``(nl, nb)`` branch-bus incidence matrices (1 at the from / to bus).
    Cg:
        ``(nb, ng)`` generator connection matrix (1 at the generator's bus).
    """

    Ybus: sp.csr_matrix
    Yf: sp.csr_matrix
    Yt: sp.csr_matrix
    Cf: sp.csr_matrix
    Ct: sp.csr_matrix
    Cg: sp.csr_matrix


def make_connection_matrices(case: Case) -> tuple[sp.csr_matrix, sp.csr_matrix, sp.csr_matrix]:
    """Return ``(Cf, Ct, Cg)`` incidence matrices for ``case``.

    Out-of-service branches/generators still get a row/column (with their
    incidence), mirroring MATPOWER; status is applied when admittances are
    formed and when generator injections are summed.
    """
    nb, nl, ng = case.n_bus, case.n_branch, case.n_gen
    f, t = case.branch_bus_indices()
    gbus = case.gen_bus_indices()
    rows = np.arange(nl)
    Cf = sp.csr_matrix((np.ones(nl), (rows, f)), shape=(nl, nb))
    Ct = sp.csr_matrix((np.ones(nl), (rows, t)), shape=(nl, nb))
    Cg = sp.csr_matrix((np.ones(ng), (gbus, np.arange(ng))), shape=(nb, ng))
    return Cf, Ct, Cg


def make_ybus(case: Case) -> AdmittanceMatrices:
    """Build the full set of admittance / connection matrices for ``case``."""
    nb, nl = case.n_bus, case.n_branch
    br = case.branch
    status = (br.status > 0).astype(float)

    Ys = status / (br.r + 1j * br.x)  # series admittance (0 for open branches)
    Bc = status * br.b  # total line charging
    tap = np.where(br.ratio == 0.0, 1.0, br.ratio).astype(complex)
    tap = tap * np.exp(1j * np.deg2rad(br.angle))

    Ytt = Ys + 1j * Bc / 2.0
    Yff = Ytt / (tap * np.conj(tap))
    Yft = -Ys / np.conj(tap)
    Ytf = -Ys / tap

    Cf, Ct, Cg = make_connection_matrices(case)
    rows = np.arange(nl)
    Yf = (
        sp.csr_matrix((Yff, (rows, rows)), shape=(nl, nl)) @ Cf
        + sp.csr_matrix((Yft, (rows, rows)), shape=(nl, nl)) @ Ct
    )
    Yt = (
        sp.csr_matrix((Ytf, (rows, rows)), shape=(nl, nl)) @ Cf
        + sp.csr_matrix((Ytt, (rows, rows)), shape=(nl, nl)) @ Ct
    )

    Ysh = (case.bus.Gs + 1j * case.bus.Bs) / case.base_mva
    Ybus = Cf.T @ Yf + Ct.T @ Yt + sp.diags(Ysh, format="csr", shape=(nb, nb))

    return AdmittanceMatrices(
        Ybus=Ybus.tocsr(),
        Yf=Yf.tocsr(),
        Yt=Yt.tocsr(),
        Cf=Cf,
        Ct=Ct,
        Cg=Cg,
    )
