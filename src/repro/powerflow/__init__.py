"""Power-flow math substrate: admittances, injections, derivatives, solvers."""

from repro.powerflow.ybus import AdmittanceMatrices, make_connection_matrices, make_ybus
from repro.powerflow.injections import (
    branch_flows,
    bus_injection,
    bus_injection_batch,
    gen_injection,
    load_injection,
    mismatch_norm,
    polar_to_complex,
    power_balance_mismatch,
)
from repro.powerflow.derivatives import (
    BatchedBranchDerivatives,
    BatchedSbusDerivatives,
    dAbr_dV,
    dIbr_dV,
    dSbr_dV,
    dSbus_dV,
)
from repro.powerflow.hessians import (
    BatchedASbrHessian,
    BatchedPolarHessian,
    BatchedSbusHessian,
    d2ASbr_dV2,
    d2Sbr_dV2,
    d2Sbus_dV2,
)
from repro.powerflow.newton import PowerFlowResult, newton_power_flow
from repro.powerflow.dc import DCMatrices, dc_nominal_flows, dc_power_flow, make_bdc

__all__ = [
    "AdmittanceMatrices",
    "make_ybus",
    "make_connection_matrices",
    "bus_injection",
    "bus_injection_batch",
    "branch_flows",
    "BatchedSbusDerivatives",
    "BatchedBranchDerivatives",
    "BatchedPolarHessian",
    "BatchedSbusHessian",
    "BatchedASbrHessian",
    "gen_injection",
    "load_injection",
    "power_balance_mismatch",
    "mismatch_norm",
    "polar_to_complex",
    "dSbus_dV",
    "dSbr_dV",
    "dAbr_dV",
    "dIbr_dV",
    "d2Sbus_dV2",
    "d2Sbr_dV2",
    "d2ASbr_dV2",
    "PowerFlowResult",
    "newton_power_flow",
    "DCMatrices",
    "make_bdc",
    "dc_power_flow",
    "dc_nominal_flows",
]
