"""Second derivatives of bus injections and branch flows (Hessian blocks).

These provide the constraint contributions to the OPF Lagrangian Hessian used
by the MIPS Newton step.  Given a multiplier vector ``lam`` the functions
return the four ``(n, n)`` blocks of the Hessian of ``lamᵀ f(Va, Vm)`` for
``f`` the complex bus injection, complex branch flow or squared branch flow.

Derivation
----------
Both the bus injection ``S = diag(V) conj(Ybus V)`` and the branch flow
``S = diag(C V) conj(Ybr V)`` are special cases of ``S = diag(A V) conj(B V)``
with constant matrices ``A`` and ``B``.  Writing ``V_i = Vm_i e^{jθ_i}``,

    Φ(θ, Vm) = lamᵀ S = Σ_{ik} W_ik V_i conj(V_k),    W = Aᵀ diag(lam) conj(B)

so with ``T_ik = W_ik V_i conj(V_k)``, row sums ``R = T·1`` and column sums
``C = Tᵀ·1`` the Hessian blocks are

    ∂²Φ/∂θ²     = T + Tᵀ - diag(R + C)
    ∂²Φ/∂θ∂Vm   = j [ diag((R - C)/Vm) + (T - Tᵀ) diag(1/Vm) ]
    ∂²Φ/∂Vm∂θ   = (∂²Φ/∂θ∂Vm)ᵀ
    ∂²Φ/∂Vm²    = diag(1/Vm) (T + Tᵀ) diag(1/Vm)

The test suite additionally verifies every block against finite differences of
the corresponding first derivatives.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

from repro.utils.sparse import col_scaled_csr, row_scaled_csr


def _diag(values: np.ndarray) -> sp.csr_matrix:
    n = values.shape[0]
    return sp.csr_matrix((values, (np.arange(n), np.arange(n))), shape=(n, n))


HessianBlocks = Tuple[sp.csr_matrix, sp.csr_matrix, sp.csr_matrix, sp.csr_matrix]


def _polar_hessian_blocks(W: sp.spmatrix, V: np.ndarray) -> HessianBlocks:
    """Hessian blocks of ``Σ_{ik} W_ik V_i conj(V_k)`` w.r.t. ``(Va, Vm)``.

    Returns ``(Gaa, Gav, Gva, Gvv)``.  All diagonal multiplications are
    applied as direct CSR data scalings — this runs once per multiplier block
    per MIPS iteration.
    """
    Vm = np.abs(V)
    Vminv = 1.0 / Vm
    T = row_scaled_csr(col_scaled_csr(sp.csr_matrix(W), np.conj(V)), V).tocsr()
    R = np.asarray(T.sum(axis=1)).ravel()  # row sums
    Csum = np.asarray(T.sum(axis=0)).ravel()  # column sums

    Tt = T.T.tocsr()
    sym = T + Tt
    skew = T - Tt

    Gaa = sym - _diag(R + Csum)
    Gav = _diag(1j * (R - Csum) * Vminv) + col_scaled_csr(skew, 1j * Vminv)
    Gva = Gav.T
    Gvv = row_scaled_csr(col_scaled_csr(sym, Vminv), Vminv)
    return (
        sp.csr_matrix(Gaa),
        sp.csr_matrix(Gav),
        sp.csr_matrix(Gva),
        sp.csr_matrix(Gvv),
    )


def d2Sbus_dV2(Ybus: sp.spmatrix, V: np.ndarray, lam: np.ndarray) -> HessianBlocks:
    """Hessian blocks of ``lamᵀ Sbus(V)`` w.r.t. (Va, Vm).

    ``lam`` may be complex; the OPF layer uses the real part of the result for
    P-balance multipliers and the imaginary part for Q-balance multipliers.
    """
    W = row_scaled_csr(
        sp.csr_matrix(Ybus).conjugate(), np.asarray(lam, dtype=complex)
    )
    return _polar_hessian_blocks(W, V)


def d2Sbr_dV2(
    Cbr: sp.spmatrix, Ybr: sp.spmatrix, V: np.ndarray, lam: np.ndarray
) -> HessianBlocks:
    """Hessian blocks of ``lamᵀ Sbr(V)`` for complex branch flows.

    ``Cbr``/``Ybr`` are the branch incidence / admittance matrices of one
    branch end; ``lam`` has one (possibly complex) entry per branch.
    """
    W = sp.csr_matrix(Cbr).T @ row_scaled_csr(
        sp.csr_matrix(Ybr).conjugate(), np.asarray(lam, dtype=complex)
    )
    return _polar_hessian_blocks(W, V)


def d2ASbr_dV2(
    dSbr_dVa: sp.spmatrix,
    dSbr_dVm: sp.spmatrix,
    Sbr: np.ndarray,
    Cbr: sp.spmatrix,
    Ybr: sp.spmatrix,
    V: np.ndarray,
    lam: np.ndarray,
) -> HessianBlocks:
    """Hessian blocks of ``lamᵀ |Sbr(V)|²`` (squared apparent-power flows).

    ``|S|² = conj(S)·S`` gives two terms: a Gauss-Newton-like product of first
    derivatives and a curvature term reusing :func:`d2Sbr_dV2` with the
    complex weight ``lam ⊙ conj(Sbr)``.
    """
    lam = np.asarray(lam, dtype=float)
    lam_c = lam.astype(complex)
    Saa, Sav, Sva, Svv = d2Sbr_dV2(Cbr, Ybr, V, lam * np.conj(Sbr))

    dVa = sp.csr_matrix(dSbr_dVa)
    dVm = sp.csr_matrix(dSbr_dVm)
    dVaH = np.conj(dVa).T.tocsr()
    dVmH = np.conj(dVm).T.tocsr()
    MdVa = row_scaled_csr(dVa, lam_c)
    MdVm = row_scaled_csr(dVm, lam_c)

    Haa = 2.0 * (sp.csr_matrix(Saa) + dVaH @ MdVa).real
    Hav = 2.0 * (sp.csr_matrix(Sav) + dVaH @ MdVm).real
    Hva = 2.0 * (sp.csr_matrix(Sva) + dVmH @ MdVa).real
    Hvv = 2.0 * (sp.csr_matrix(Svv) + dVmH @ MdVm).real
    return (
        sp.csr_matrix(Haa),
        sp.csr_matrix(Hav),
        sp.csr_matrix(Hva),
        sp.csr_matrix(Hvv),
    )
