"""Second derivatives of bus injections and branch flows (Hessian blocks).

These provide the constraint contributions to the OPF Lagrangian Hessian used
by the MIPS Newton step.  Given a multiplier vector ``lam`` the functions
return the four ``(n, n)`` blocks of the Hessian of ``lamᵀ f(Va, Vm)`` for
``f`` the complex bus injection, complex branch flow or squared branch flow.

Derivation
----------
Both the bus injection ``S = diag(V) conj(Ybus V)`` and the branch flow
``S = diag(C V) conj(Ybr V)`` are special cases of ``S = diag(A V) conj(B V)``
with constant matrices ``A`` and ``B``.  Writing ``V_i = Vm_i e^{jθ_i}``,

    Φ(θ, Vm) = lamᵀ S = Σ_{ik} W_ik V_i conj(V_k),    W = Aᵀ diag(lam) conj(B)

so with ``T_ik = W_ik V_i conj(V_k)``, row sums ``R = T·1`` and column sums
``C = Tᵀ·1`` the Hessian blocks are

    ∂²Φ/∂θ²     = T + Tᵀ - diag(R + C)
    ∂²Φ/∂θ∂Vm   = j [ diag((R - C)/Vm) + (T - Tᵀ) diag(1/Vm) ]
    ∂²Φ/∂Vm∂θ   = (∂²Φ/∂θ∂Vm)ᵀ
    ∂²Φ/∂Vm²    = diag(1/Vm) (T + Tᵀ) diag(1/Vm)

The test suite additionally verifies every block against finite differences of
the corresponding first derivatives.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

from repro.utils.sparse import (
    MatmulPlan,
    batched_row_sums,
    col_scaled_csr,
    csr_rows,
    pattern_union,
    row_scaled_csr,
    transpose_plan,
)


def _diag(values: np.ndarray) -> sp.csr_matrix:
    n = values.shape[0]
    return sp.csr_matrix((values, (np.arange(n), np.arange(n))), shape=(n, n))


HessianBlocks = Tuple[sp.csr_matrix, sp.csr_matrix, sp.csr_matrix, sp.csr_matrix]


def _polar_hessian_blocks(W: sp.spmatrix, V: np.ndarray) -> HessianBlocks:
    """Hessian blocks of ``Σ_{ik} W_ik V_i conj(V_k)`` w.r.t. ``(Va, Vm)``.

    Returns ``(Gaa, Gav, Gva, Gvv)``.  All diagonal multiplications are
    applied as direct CSR data scalings — this runs once per multiplier block
    per MIPS iteration.
    """
    Vm = np.abs(V)
    Vminv = 1.0 / Vm
    T = row_scaled_csr(col_scaled_csr(sp.csr_matrix(W), np.conj(V)), V).tocsr()
    R = np.asarray(T.sum(axis=1)).ravel()  # row sums
    Csum = np.asarray(T.sum(axis=0)).ravel()  # column sums

    Tt = T.T.tocsr()
    sym = T + Tt
    skew = T - Tt

    Gaa = sym - _diag(R + Csum)
    Gav = _diag(1j * (R - Csum) * Vminv) + col_scaled_csr(skew, 1j * Vminv)
    Gva = Gav.T
    Gvv = row_scaled_csr(col_scaled_csr(sym, Vminv), Vminv)
    return (
        sp.csr_matrix(Gaa),
        sp.csr_matrix(Gav),
        sp.csr_matrix(Gva),
        sp.csr_matrix(Gvv),
    )


def d2Sbus_dV2(Ybus: sp.spmatrix, V: np.ndarray, lam: np.ndarray) -> HessianBlocks:
    """Hessian blocks of ``lamᵀ Sbus(V)`` w.r.t. (Va, Vm).

    ``lam`` may be complex; the OPF layer uses the real part of the result for
    P-balance multipliers and the imaginary part for Q-balance multipliers.
    """
    W = row_scaled_csr(
        sp.csr_matrix(Ybus).conjugate(), np.asarray(lam, dtype=complex)
    )
    return _polar_hessian_blocks(W, V)


def d2Sbr_dV2(
    Cbr: sp.spmatrix, Ybr: sp.spmatrix, V: np.ndarray, lam: np.ndarray
) -> HessianBlocks:
    """Hessian blocks of ``lamᵀ Sbr(V)`` for complex branch flows.

    ``Cbr``/``Ybr`` are the branch incidence / admittance matrices of one
    branch end; ``lam`` has one (possibly complex) entry per branch.
    """
    W = sp.csr_matrix(Cbr).T @ row_scaled_csr(
        sp.csr_matrix(Ybr).conjugate(), np.asarray(lam, dtype=complex)
    )
    return _polar_hessian_blocks(W, V)


def d2ASbr_dV2(
    dSbr_dVa: sp.spmatrix,
    dSbr_dVm: sp.spmatrix,
    Sbr: np.ndarray,
    Cbr: sp.spmatrix,
    Ybr: sp.spmatrix,
    V: np.ndarray,
    lam: np.ndarray,
) -> HessianBlocks:
    """Hessian blocks of ``lamᵀ |Sbr(V)|²`` (squared apparent-power flows).

    ``|S|² = conj(S)·S`` gives two terms: a Gauss-Newton-like product of first
    derivatives and a curvature term reusing :func:`d2Sbr_dV2` with the
    complex weight ``lam ⊙ conj(Sbr)``.
    """
    lam = np.asarray(lam, dtype=float)
    lam_c = lam.astype(complex)
    Saa, Sav, Sva, Svv = d2Sbr_dV2(Cbr, Ybr, V, lam * np.conj(Sbr))

    dVa = sp.csr_matrix(dSbr_dVa)
    dVm = sp.csr_matrix(dSbr_dVm)
    dVaH = np.conj(dVa).T.tocsr()
    dVmH = np.conj(dVm).T.tocsr()
    MdVa = row_scaled_csr(dVa, lam_c)
    MdVm = row_scaled_csr(dVm, lam_c)

    Haa = 2.0 * (sp.csr_matrix(Saa) + dVaH @ MdVa).real
    Hav = 2.0 * (sp.csr_matrix(Sav) + dVaH @ MdVm).real
    Hva = 2.0 * (sp.csr_matrix(Sva) + dVmH @ MdVa).real
    Hvv = 2.0 * (sp.csr_matrix(Svv) + dVmH @ MdVm).real
    return (
        sp.csr_matrix(Haa),
        sp.csr_matrix(Hav),
        sp.csr_matrix(Hva),
        sp.csr_matrix(Hvv),
    )


# ----------------------------------------------------------------- batch axis
def _pattern_csr(indptr: np.ndarray, indices: np.ndarray, shape) -> sp.csr_matrix:
    """Zero-data canonical CSR view of a pattern described by index arrays."""
    m = sp.csr_matrix((np.zeros(indices.size), indices, indptr), shape=shape)
    m.has_canonical_format = True
    return m


class BatchedPolarHessian:
    """Batch-axis :func:`_polar_hessian_blocks` on a fixed ``W`` pattern.

    All four Hessian blocks live on the symmetric :attr:`template` pattern
    ``union(P, Pᵀ, I)`` where ``P`` is the weight matrix's pattern; the plan
    precomputes the transpose permutations and scatter positions once, and
    :meth:`blocks` replays them on ``(B, nnz_P)`` weight data planes.
    """

    def __init__(self, W_pattern: sp.spmatrix):
        P = sp.csr_matrix(W_pattern).tocsr()
        P.sort_indices()
        if P.shape[0] != P.shape[1]:
            raise ValueError("polar Hessian requires a square weight matrix")
        n = P.shape[0]
        self._indptr = P.indptr
        self._rows = csr_rows(P)
        self._cols = P.indices
        self._t_order, self._t_indptr, t_indices = transpose_plan(P)
        Pt = _pattern_csr(self._t_indptr, t_indices, (n, n))
        #: Union pattern carrying all four blocks.
        self.template, (self._pos_t, self._pos_tt, self._pos_d) = pattern_union(
            [P, Pt, sp.identity(n, format="csr")]
        )
        self._u_rows = csr_rows(self.template)
        self._u_cols = self.template.indices
        # The union pattern is symmetric, so its transpose permutation maps the
        # template onto itself (used for Gva = Gavᵀ).
        self._ut_order, _, _ = transpose_plan(self.template)

    def blocks(self, Wdata: np.ndarray, V: np.ndarray):
        """Hessian-block data planes for weight planes ``Wdata`` at ``V``.

        Returns complex ``(B, nnz_U)`` planes ``(Gaa, Gav, Gva, Gvv)`` on
        :attr:`template`'s pattern.
        """
        Wdata = np.atleast_2d(Wdata)
        batch = max(Wdata.shape[0], V.shape[0])
        Vm = np.abs(V)
        Vminv = 1.0 / Vm
        T = Wdata * np.conj(V[:, self._cols]) * V[:, self._rows]
        if T.shape[0] != batch:
            T = np.broadcast_to(T, (batch, T.shape[1]))
        R = batched_row_sums(T, self._indptr)
        Tt = T[:, self._t_order]
        Csum = batched_row_sums(Tt, self._t_indptr)

        nnz_u = self.template.nnz
        Gaa = np.zeros((batch, nnz_u), dtype=complex)
        Gaa[:, self._pos_t] = T
        Gaa[:, self._pos_tt] += Tt
        Gaa[:, self._pos_d] -= R + Csum

        Gav = np.zeros((batch, nnz_u), dtype=complex)
        Gav[:, self._pos_t] = T
        Gav[:, self._pos_tt] -= Tt
        Gav *= (1j * Vminv)[:, self._u_cols]
        Gav[:, self._pos_d] += 1j * (R - Csum) * Vminv

        Gva = Gav[:, self._ut_order]

        Gvv = np.zeros((batch, nnz_u), dtype=complex)
        Gvv[:, self._pos_t] = T
        Gvv[:, self._pos_tt] += Tt
        Gvv *= Vminv[:, self._u_rows] * Vminv[:, self._u_cols]
        return Gaa, Gav, Gva, Gvv


class BatchedSbusHessian:
    """Batch-axis :func:`d2Sbus_dV2`: bus-injection curvature data planes.

    The weight is ``W = diag(lam) conj(Ybus)`` with per-slot multipliers, so
    the weight data plane is a pure scaling of the constant admittance data.
    Because every block is ℂ-linear in ``lam``, one evaluation at
    ``lamP - j·lamQ`` yields (after taking real parts) the combined
    P/Q-balance contribution the OPF Hessian needs.
    """

    def __init__(self, Ybus: sp.spmatrix):
        Y = sp.csr_matrix(Ybus).tocsr()
        Y.sort_indices()
        self._conj_ydata = np.conj(Y.data)
        self._y_rows = csr_rows(Y)
        self.polar = BatchedPolarHessian(Y)
        #: Pattern of the returned block planes.
        self.template = self.polar.template

    def __call__(self, V: np.ndarray, lam: np.ndarray):
        """Block planes for ``(B, nb)`` voltages and complex ``(B, nb)`` ``lam``."""
        Wdata = self._conj_ydata * lam[:, self._y_rows]
        return self.polar.blocks(Wdata, V)


class BatchedASbrHessian:
    """Batch-axis :func:`d2ASbr_dV2` for one branch end.

    Combines a fixed-pattern product plan for the curvature weight
    ``W = Cbrᵀ diag(lam ⊙ conj(Sbr)) conj(Ybr)``, a polar-Hessian plan on that
    product's pattern, and a Gram product plan for the first-derivative terms
    ``dV·ᴴ diag(lam) dV·``.  :meth:`blocks` returns the four *real* Hessian
    data planes on :attr:`template`'s pattern.
    """

    def __init__(self, Cbr: sp.spmatrix, Ybr: sp.spmatrix, deriv_template: sp.spmatrix):
        Cbr = sp.csr_matrix(Cbr).tocsr()
        Ybr = sp.csr_matrix(Ybr).tocsr()
        Cbr.sort_indices()
        Ybr.sort_indices()
        CbrT = Cbr.T.tocsr()
        CbrT.sort_indices()
        self._cbrT_data = CbrT.data[np.newaxis, :].astype(complex)
        self._w_plan = MatmulPlan(CbrT, Ybr)
        self._conj_ydata = np.conj(Ybr.data)
        self._y_rows = csr_rows(Ybr)
        self.polar = BatchedPolarHessian(self._w_plan.template)

        deriv = sp.csr_matrix(deriv_template).tocsr()
        deriv.sort_indices()
        self._d_rows = csr_rows(deriv)
        self._dT_order, dT_indptr, dT_indices = transpose_plan(deriv)
        derivT = _pattern_csr(dT_indptr, dT_indices, (deriv.shape[1], deriv.shape[0]))
        self._gram_plan = MatmulPlan(derivT, deriv)
        #: Pattern of the returned block planes (curvature ∪ Gram terms).
        self.template, (self._pos_s, self._pos_g) = pattern_union(
            [self.polar.template, self._gram_plan.template]
        )

    def blocks(
        self,
        dVa: np.ndarray,
        dVm: np.ndarray,
        Sbr: np.ndarray,
        lam: np.ndarray,
        V: np.ndarray,
    ):
        """Real Hessian-block planes ``(Haa, Hav, Hva, Hvv)`` on :attr:`template`.

        ``dVa``/``dVm`` are the first-derivative data planes (pattern
        ``deriv_template``), ``Sbr`` the complex flows and ``lam`` the real
        per-branch multipliers, all batched.
        """
        lam2 = lam * np.conj(Sbr)
        Wdata = self._w_plan.multiply(
            self._cbrT_data, self._conj_ydata * lam2[:, self._y_rows]
        )
        Saa, Sav, Sva, Svv = self.polar.blocks(Wdata, V)

        lam_rows = lam[:, self._d_rows]
        ATa = np.conj(dVa)[:, self._dT_order]
        ATm = np.conj(dVm)[:, self._dT_order]
        Ba = dVa * lam_rows
        Bm = dVm * lam_rows
        Paa = self._gram_plan.multiply(ATa, Ba)
        Pav = self._gram_plan.multiply(ATa, Bm)
        Pva = self._gram_plan.multiply(ATm, Ba)
        Pvv = self._gram_plan.multiply(ATm, Bm)

        batch = Paa.shape[0]
        out = []
        for S, P in ((Saa, Paa), (Sav, Pav), (Sva, Pva), (Svv, Pvv)):
            block = np.zeros((batch, self.template.nnz))
            block[:, self._pos_s] = 2.0 * S.real
            block[:, self._pos_g] += 2.0 * P.real
            out.append(block)
        return tuple(out)
