"""First derivatives of bus injections and branch flows w.r.t. voltages.

These follow the standard polar-coordinate formulas used by MATPOWER
(``dSbus_dV``, ``dSbr_dV``, ``dAbr_dV``).  Every function returns SciPy sparse
matrices; the test suite verifies all of them against central finite
differences of the underlying injection/flow functions.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def _diag(values: np.ndarray) -> sp.csr_matrix:
    n = values.shape[0]
    return sp.csr_matrix((values, (np.arange(n), np.arange(n))), shape=(n, n))


def dSbus_dV(Ybus: sp.spmatrix, V: np.ndarray) -> tuple[sp.csr_matrix, sp.csr_matrix]:
    """Partial derivatives of bus injections w.r.t. voltage angle and magnitude.

    Returns ``(dSbus_dVa, dSbus_dVm)``, each ``(nb, nb)`` complex.
    """
    Ibus = Ybus @ V
    diagV = _diag(V)
    diagIbus = _diag(Ibus)
    diagVnorm = _diag(V / np.abs(V))

    dS_dVm = diagV @ np.conj(Ybus @ diagVnorm) + np.conj(diagIbus) @ diagVnorm
    dS_dVa = 1j * diagV @ np.conj(diagIbus - Ybus @ diagV)
    return dS_dVa.tocsr(), dS_dVm.tocsr()


def dSbr_dV(
    Ybr: sp.spmatrix, Cbr: sp.spmatrix, V: np.ndarray
) -> tuple[sp.csr_matrix, sp.csr_matrix, np.ndarray]:
    """Partial derivatives of complex branch flows (one branch end) w.r.t. voltages.

    ``Ybr``/``Cbr`` are the branch admittance / incidence matrices of either
    the from or the to end.  Returns ``(dSbr_dVa, dSbr_dVm, Sbr)`` with the
    flow vector included since callers always need it alongside.
    """
    Ibr = Ybr @ V
    Vbr = Cbr @ V
    diagV = _diag(V)
    diagVnorm = _diag(V / np.abs(V))
    diagIbr = _diag(Ibr)
    diagVbr = _diag(Vbr)

    dS_dVa = 1j * (np.conj(diagIbr) @ Cbr @ diagV - diagVbr @ np.conj(Ybr @ diagV))
    dS_dVm = diagVbr @ np.conj(Ybr @ diagVnorm) + np.conj(diagIbr) @ Cbr @ diagVnorm
    Sbr = Vbr * np.conj(Ibr)
    return dS_dVa.tocsr(), dS_dVm.tocsr(), Sbr


def dAbr_dV(
    dSbr_dVa: sp.spmatrix,
    dSbr_dVm: sp.spmatrix,
    Sbr: np.ndarray,
) -> tuple[sp.csr_matrix, sp.csr_matrix]:
    """Partial derivatives of the squared apparent flow ``A = |S|^2`` w.r.t. voltages.

    Returns ``(dAbr_dVa, dAbr_dVm)``, each real ``(nl, nb)``.
    """
    dP = _diag(Sbr.real)
    dQ = _diag(Sbr.imag)
    dA_dVa = 2.0 * (dP @ sp.csr_matrix(dSbr_dVa.real) + dQ @ sp.csr_matrix(dSbr_dVa.imag))
    dA_dVm = 2.0 * (dP @ sp.csr_matrix(dSbr_dVm.real) + dQ @ sp.csr_matrix(dSbr_dVm.imag))
    return dA_dVa.tocsr(), dA_dVm.tocsr()


def dIbr_dV(
    Ybr: sp.spmatrix, V: np.ndarray
) -> tuple[sp.csr_matrix, sp.csr_matrix, np.ndarray]:
    """Partial derivatives of complex branch currents w.r.t. voltages.

    Provided for completeness (current-magnitude flow limits); returns
    ``(dIbr_dVa, dIbr_dVm, Ibr)``.
    """
    diagV = _diag(V)
    diagVnorm = _diag(V / np.abs(V))
    Ibr = Ybr @ V
    dI_dVa = 1j * (Ybr @ diagV)
    dI_dVm = Ybr @ diagVnorm
    return sp.csr_matrix(dI_dVa), sp.csr_matrix(dI_dVm), Ibr
