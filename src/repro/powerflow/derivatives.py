"""First derivatives of bus injections and branch flows w.r.t. voltages.

These follow the standard polar-coordinate formulas used by MATPOWER
(``dSbus_dV``, ``dSbr_dV``, ``dAbr_dV``).  Every function returns SciPy sparse
matrices; the test suite verifies all of them against central finite
differences of the underlying injection/flow functions.

The formulas multiply by diagonal matrices only, so instead of sparse matrix
products the implementations scale the CSR ``data`` arrays directly
(:func:`~repro.utils.sparse.row_scaled_csr` / ``col_scaled_csr``) — these
kernels sit on the per-iteration hot path of the MIPS solver.

For the lockstep batch solver the same formulas are evaluated for *B*
voltage states at once: :class:`BatchedSbusDerivatives` and
:class:`BatchedBranchDerivatives` precompute the fixed sparsity pattern of
the derivative matrices once per network and then produce ``(B, nnz)``
*data planes* on that pattern with pure (vectorised) NumPy arithmetic —
one nonzero of the scalar result per plane column.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.utils.sparse import col_scaled_csr, csr_rows, pattern_union, row_scaled_csr


def _diag(values: np.ndarray) -> sp.csr_matrix:
    n = values.shape[0]
    return sp.csr_matrix((values, (np.arange(n), np.arange(n))), shape=(n, n))


def dSbus_dV(Ybus: sp.spmatrix, V: np.ndarray) -> tuple[sp.csr_matrix, sp.csr_matrix]:
    """Partial derivatives of bus injections w.r.t. voltage angle and magnitude.

    Returns ``(dSbus_dVa, dSbus_dVm)``, each ``(nb, nb)`` complex.
    """
    Ybus = sp.csr_matrix(Ybus)
    Ibus = Ybus @ V
    Vnorm = V / np.abs(V)

    # dS_dVa = j diag(V) conj(diag(Ibus) - Ybus diag(V))
    dS_dVa = row_scaled_csr((_diag(Ibus) - col_scaled_csr(Ybus, V)).conjugate(), 1j * V)
    # dS_dVm = diag(V) conj(Ybus diag(Vnorm)) + conj(diag(Ibus)) diag(Vnorm)
    dS_dVm = row_scaled_csr(col_scaled_csr(Ybus, Vnorm).conjugate(), V) + _diag(
        np.conj(Ibus) * Vnorm
    )
    return dS_dVa.tocsr(), dS_dVm.tocsr()


def dSbr_dV(
    Ybr: sp.spmatrix, Cbr: sp.spmatrix, V: np.ndarray
) -> tuple[sp.csr_matrix, sp.csr_matrix, np.ndarray]:
    """Partial derivatives of complex branch flows (one branch end) w.r.t. voltages.

    ``Ybr``/``Cbr`` are the branch admittance / incidence matrices of either
    the from or the to end.  Returns ``(dSbr_dVa, dSbr_dVm, Sbr)`` with the
    flow vector included since callers always need it alongside.
    """
    Ybr = sp.csr_matrix(Ybr)
    Cbr = sp.csr_matrix(Cbr)
    Ibr = Ybr @ V
    Vbr = Cbr @ V
    Vnorm = V / np.abs(V)
    conj_Ibr = np.conj(Ibr)

    # dS_dVa = j (conj(diag(Ibr)) Cbr diag(V) - diag(Vbr) conj(Ybr diag(V)))
    dS_dVa = row_scaled_csr(col_scaled_csr(Cbr, 1j * V), conj_Ibr) - row_scaled_csr(
        col_scaled_csr(Ybr, V).conjugate(), 1j * Vbr
    )
    # dS_dVm = diag(Vbr) conj(Ybr diag(Vnorm)) + conj(diag(Ibr)) Cbr diag(Vnorm)
    dS_dVm = row_scaled_csr(col_scaled_csr(Ybr, Vnorm).conjugate(), Vbr) + row_scaled_csr(
        col_scaled_csr(Cbr, Vnorm), conj_Ibr
    )
    Sbr = Vbr * conj_Ibr
    return dS_dVa.tocsr(), dS_dVm.tocsr(), Sbr


def dAbr_dV(
    dSbr_dVa: sp.spmatrix,
    dSbr_dVm: sp.spmatrix,
    Sbr: np.ndarray,
) -> tuple[sp.csr_matrix, sp.csr_matrix]:
    """Partial derivatives of the squared apparent flow ``A = |S|^2`` w.r.t. voltages.

    Returns ``(dAbr_dVa, dAbr_dVm)``, each real ``(nl, nb)``.
    """
    dVa = sp.csr_matrix(dSbr_dVa)
    dVm = sp.csr_matrix(dSbr_dVm)
    twoP = 2.0 * Sbr.real
    twoQ = 2.0 * Sbr.imag
    dA_dVa = row_scaled_csr(dVa.real, twoP) + row_scaled_csr(dVa.imag, twoQ)
    dA_dVm = row_scaled_csr(dVm.real, twoP) + row_scaled_csr(dVm.imag, twoQ)
    return dA_dVa.tocsr(), dA_dVm.tocsr()


class BatchedSbusDerivatives:
    """Batch-axis :func:`dSbus_dV` on the fixed pattern ``union(Ybus, I)``.

    Calling the plan with a ``(B, nb)`` complex voltage matrix returns the
    ``(B, nnz)`` data planes of ``dSbus_dVa`` and ``dSbus_dVm`` (both share
    :attr:`template`'s pattern) plus the batched bus-current injections.
    """

    def __init__(self, Ybus: sp.spmatrix):
        Ybus = sp.csr_matrix(Ybus)
        n = Ybus.shape[0]
        #: Shared sparsity pattern of both derivative matrices.
        self.template, (pos_y, pos_d) = pattern_union(
            [Ybus, sp.identity(n, format="csr")]
        )
        #: Row / column index of every stored nonzero of the pattern.
        self.rows = csr_rows(self.template)
        self.cols = self.template.indices
        ydata = np.zeros(self.template.nnz, dtype=complex)
        ydata[pos_y] = Ybus.tocsr().data
        self._ydata = ydata
        diag = np.zeros(self.template.nnz)
        diag[pos_d] = 1.0
        self._diag = diag
        self._Ybus = Ybus

    def __call__(self, V: np.ndarray):
        """Evaluate at ``V`` of shape ``(B, nb)``; returns ``(dVa, dVm, Ibus)``."""
        Ibus = (self._Ybus @ V.T).T
        Vnorm = V / np.abs(V)
        Vr = V[:, self.rows]
        # dS_dVa = j diag(V) conj(diag(Ibus) - Ybus diag(V)), elementwise on the
        # union pattern: entry (i, j) -> jV_i conj(1{i==j} Ibus_i - Y_ij V_j).
        dVa = 1j * Vr * np.conj(
            self._diag * Ibus[:, self.rows] - self._ydata * V[:, self.cols]
        )
        # dS_dVm = diag(V) conj(Ybus diag(Vnorm)) + conj(diag(Ibus)) diag(Vnorm)
        dVm = Vr * np.conj(self._ydata * Vnorm[:, self.cols]) + self._diag * (
            np.conj(Ibus[:, self.rows]) * Vnorm[:, self.rows]
        )
        return dVa, dVm, Ibus


class BatchedBranchDerivatives:
    """Batch-axis :func:`dSbr_dV` for one branch end on ``union(Cbr, Ybr)``.

    Evaluating at a ``(B, nb)`` voltage matrix returns the data planes of
    ``dSbr_dVa`` / ``dSbr_dVm`` on :attr:`template`'s pattern and the complex
    branch flows ``Sbr``; :meth:`squared_flow` turns those into the
    ``|Sbr|²`` derivative planes of :func:`dAbr_dV` (same pattern).
    """

    def __init__(self, Ybr: sp.spmatrix, Cbr: sp.spmatrix):
        Ybr = sp.csr_matrix(Ybr)
        Cbr = sp.csr_matrix(Cbr)
        #: Shared sparsity pattern of the branch-flow derivative matrices.
        self.template, (pos_y, pos_c) = pattern_union([Ybr, Cbr])
        #: Branch (row) / bus (column) index per stored nonzero.
        self.rows = csr_rows(self.template)
        self.cols = self.template.indices
        ydata = np.zeros(self.template.nnz, dtype=complex)
        ydata[pos_y] = Ybr.tocsr().data
        self._ydata = ydata
        cdata = np.zeros(self.template.nnz, dtype=complex)
        cdata[pos_c] = Cbr.tocsr().data
        self._cdata = cdata
        self._Ybr = Ybr
        self._Cbr = Cbr

    def __call__(self, V: np.ndarray):
        """Evaluate at ``V`` of shape ``(B, nb)``; returns ``(dVa, dVm, Sbr)``."""
        Ibr = (self._Ybr @ V.T).T
        Vbr = (self._Cbr @ V.T).T
        Vnorm = V / np.abs(V)
        conj_Ibr = np.conj(Ibr)
        cI = conj_Ibr[:, self.rows]
        Vb = Vbr[:, self.rows]
        Vc = V[:, self.cols]
        Vnc = Vnorm[:, self.cols]
        # dS_dVa = j (conj(diag(Ibr)) Cbr diag(V) - diag(Vbr) conj(Ybr diag(V)))
        dVa = cI * (self._cdata * (1j * Vc)) - 1j * Vb * np.conj(self._ydata * Vc)
        # dS_dVm = diag(Vbr) conj(Ybr diag(Vnorm)) + conj(diag(Ibr)) Cbr diag(Vnorm)
        dVm = Vb * np.conj(self._ydata * Vnc) + cI * (self._cdata * Vnc)
        Sbr = Vbr * conj_Ibr
        return dVa, dVm, Sbr

    def squared_flow(self, dVa: np.ndarray, dVm: np.ndarray, Sbr: np.ndarray):
        """Batch-axis :func:`dAbr_dV`: derivative planes of ``|Sbr|²``."""
        twoP = 2.0 * Sbr.real[:, self.rows]
        twoQ = 2.0 * Sbr.imag[:, self.rows]
        dA_dVa = twoP * dVa.real + twoQ * dVa.imag
        dA_dVm = twoP * dVm.real + twoQ * dVm.imag
        return dA_dVa, dA_dVm


def dIbr_dV(
    Ybr: sp.spmatrix, V: np.ndarray
) -> tuple[sp.csr_matrix, sp.csr_matrix, np.ndarray]:
    """Partial derivatives of complex branch currents w.r.t. voltages.

    Provided for completeness (current-magnitude flow limits); returns
    ``(dIbr_dVa, dIbr_dVm, Ibr)``.
    """
    diagV = _diag(V)
    diagVnorm = _diag(V / np.abs(V))
    Ibr = Ybr @ V
    dI_dVa = 1j * (Ybr @ diagV)
    dI_dVm = Ybr @ diagVnorm
    return sp.csr_matrix(dI_dVa), sp.csr_matrix(dI_dVm), Ibr
