"""First derivatives of bus injections and branch flows w.r.t. voltages.

These follow the standard polar-coordinate formulas used by MATPOWER
(``dSbus_dV``, ``dSbr_dV``, ``dAbr_dV``).  Every function returns SciPy sparse
matrices; the test suite verifies all of them against central finite
differences of the underlying injection/flow functions.

The formulas multiply by diagonal matrices only, so instead of sparse matrix
products the implementations scale the CSR ``data`` arrays directly
(:func:`~repro.utils.sparse.row_scaled_csr` / ``col_scaled_csr``) — these
kernels sit on the per-iteration hot path of the MIPS solver.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.utils.sparse import col_scaled_csr, row_scaled_csr


def _diag(values: np.ndarray) -> sp.csr_matrix:
    n = values.shape[0]
    return sp.csr_matrix((values, (np.arange(n), np.arange(n))), shape=(n, n))


def dSbus_dV(Ybus: sp.spmatrix, V: np.ndarray) -> tuple[sp.csr_matrix, sp.csr_matrix]:
    """Partial derivatives of bus injections w.r.t. voltage angle and magnitude.

    Returns ``(dSbus_dVa, dSbus_dVm)``, each ``(nb, nb)`` complex.
    """
    Ybus = sp.csr_matrix(Ybus)
    Ibus = Ybus @ V
    Vnorm = V / np.abs(V)

    # dS_dVa = j diag(V) conj(diag(Ibus) - Ybus diag(V))
    dS_dVa = row_scaled_csr((_diag(Ibus) - col_scaled_csr(Ybus, V)).conjugate(), 1j * V)
    # dS_dVm = diag(V) conj(Ybus diag(Vnorm)) + conj(diag(Ibus)) diag(Vnorm)
    dS_dVm = row_scaled_csr(col_scaled_csr(Ybus, Vnorm).conjugate(), V) + _diag(
        np.conj(Ibus) * Vnorm
    )
    return dS_dVa.tocsr(), dS_dVm.tocsr()


def dSbr_dV(
    Ybr: sp.spmatrix, Cbr: sp.spmatrix, V: np.ndarray
) -> tuple[sp.csr_matrix, sp.csr_matrix, np.ndarray]:
    """Partial derivatives of complex branch flows (one branch end) w.r.t. voltages.

    ``Ybr``/``Cbr`` are the branch admittance / incidence matrices of either
    the from or the to end.  Returns ``(dSbr_dVa, dSbr_dVm, Sbr)`` with the
    flow vector included since callers always need it alongside.
    """
    Ybr = sp.csr_matrix(Ybr)
    Cbr = sp.csr_matrix(Cbr)
    Ibr = Ybr @ V
    Vbr = Cbr @ V
    Vnorm = V / np.abs(V)
    conj_Ibr = np.conj(Ibr)

    # dS_dVa = j (conj(diag(Ibr)) Cbr diag(V) - diag(Vbr) conj(Ybr diag(V)))
    dS_dVa = row_scaled_csr(col_scaled_csr(Cbr, 1j * V), conj_Ibr) - row_scaled_csr(
        col_scaled_csr(Ybr, V).conjugate(), 1j * Vbr
    )
    # dS_dVm = diag(Vbr) conj(Ybr diag(Vnorm)) + conj(diag(Ibr)) Cbr diag(Vnorm)
    dS_dVm = row_scaled_csr(col_scaled_csr(Ybr, Vnorm).conjugate(), Vbr) + row_scaled_csr(
        col_scaled_csr(Cbr, Vnorm), conj_Ibr
    )
    Sbr = Vbr * conj_Ibr
    return dS_dVa.tocsr(), dS_dVm.tocsr(), Sbr


def dAbr_dV(
    dSbr_dVa: sp.spmatrix,
    dSbr_dVm: sp.spmatrix,
    Sbr: np.ndarray,
) -> tuple[sp.csr_matrix, sp.csr_matrix]:
    """Partial derivatives of the squared apparent flow ``A = |S|^2`` w.r.t. voltages.

    Returns ``(dAbr_dVa, dAbr_dVm)``, each real ``(nl, nb)``.
    """
    dVa = sp.csr_matrix(dSbr_dVa)
    dVm = sp.csr_matrix(dSbr_dVm)
    twoP = 2.0 * Sbr.real
    twoQ = 2.0 * Sbr.imag
    dA_dVa = row_scaled_csr(dVa.real, twoP) + row_scaled_csr(dVa.imag, twoQ)
    dA_dVm = row_scaled_csr(dVm.real, twoP) + row_scaled_csr(dVm.imag, twoQ)
    return dA_dVa.tocsr(), dA_dVm.tocsr()


def dIbr_dV(
    Ybr: sp.spmatrix, V: np.ndarray
) -> tuple[sp.csr_matrix, sp.csr_matrix, np.ndarray]:
    """Partial derivatives of complex branch currents w.r.t. voltages.

    Provided for completeness (current-magnitude flow limits); returns
    ``(dIbr_dVa, dIbr_dVm, Ibr)``.
    """
    diagV = _diag(V)
    diagVnorm = _diag(V / np.abs(V))
    Ibr = Ybr @ V
    dI_dVa = 1j * (Ybr @ diagV)
    dI_dVm = Ybr @ diagVnorm
    return sp.csr_matrix(dI_dVa), sp.csr_matrix(dI_dVm), Ibr
