"""DC (linearised) power flow.

Used to calibrate synthetic-case branch ratings, as a cheap baseline in the
examples, and to sanity-check AC results (DC flows should roughly track AC
active-power flows on lightly loaded networks).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.grid.components import Case, REF


@dataclass(frozen=True)
class DCMatrices:
    """``Bbus`` (nb×nb) and ``Bf`` (nl×nb) susceptance matrices (p.u.)."""

    Bbus: sp.csr_matrix
    Bf: sp.csr_matrix


def make_bdc(case: Case) -> DCMatrices:
    """Build the DC power-flow matrices (phase shifters are ignored)."""
    nb, nl = case.n_bus, case.n_branch
    br = case.branch
    status = (br.status > 0).astype(float)
    tap = np.where(br.ratio == 0.0, 1.0, br.ratio)
    b = status / (br.x * tap)

    f, t = case.branch_bus_indices()
    rows = np.arange(nl)
    Bf = sp.csr_matrix(
        (np.concatenate([b, -b]), (np.concatenate([rows, rows]), np.concatenate([f, t]))),
        shape=(nl, nb),
    )
    Cft = sp.csr_matrix(
        (
            np.concatenate([np.ones(nl), -np.ones(nl)]),
            (np.concatenate([rows, rows]), np.concatenate([f, t])),
        ),
        shape=(nl, nb),
    )
    Bbus = Cft.T @ Bf
    return DCMatrices(Bbus=Bbus.tocsr(), Bf=Bf)


def dc_power_flow(case: Case, Pinj_mw: np.ndarray) -> np.ndarray:
    """Solve the DC power flow for net injections ``Pinj_mw`` (MW per bus).

    Returns branch active-power flows in MW (from-end convention).  The
    reference-bus injection is implicitly adjusted to balance the system, as
    usual for DC power flow.
    """
    Pinj_mw = np.asarray(Pinj_mw, dtype=float)
    if Pinj_mw.shape != (case.n_bus,):
        raise ValueError("Pinj_mw must have one entry per bus")
    mats = make_bdc(case)
    ref = np.flatnonzero(case.bus.bus_type == REF)
    if ref.size != 1:
        raise ValueError("DC power flow requires exactly one reference bus")
    keep = np.setdiff1d(np.arange(case.n_bus), ref)

    P = Pinj_mw / case.base_mva
    theta = np.zeros(case.n_bus)
    B_kk = mats.Bbus[np.ix_(keep, keep)].tocsc()
    theta[keep] = spla.spsolve(B_kk, P[keep])
    flows_pu = mats.Bf @ theta
    return flows_pu * case.base_mva


def dc_nominal_flows(case: Case) -> np.ndarray:
    """DC branch flows for the case's nominal dispatch and loads (MW)."""
    Pg_bus = np.zeros(case.n_bus)
    on = case.gen.status > 0
    np.add.at(Pg_bus, case.gen_bus_indices()[on], case.gen.Pg[on])
    return dc_power_flow(case, Pg_bus - case.bus.Pd)
