"""Sensitivity study of the warm-start signals (Table I, Section V).

For every combination of *precise* (ground-truth) versus *imprecise* (solver
default) values of the four signals ``X, λ, µ, Z`` this tool warm-starts MIPS
and measures the success rate and the speedup relative to the all-default
baseline.  The results drive the MTL design decisions (feature prioritisation
and the physics-dependent hierarchy).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.grid.components import Case
from repro.grid.perturb import sample_loads
from repro.opf.model import OPFModel
from repro.opf.solver import OPFOptions, solve_opf
from repro.utils.logging import get_logger
from repro.utils.rng import RNGLike

LOGGER = get_logger("sensitivity")

#: The 16 precise/imprecise combinations in the paper's Table I row order
#: (columns are X, λ, µ, Z; 0 = imprecise default, 1 = precise value).
COMBINATIONS: Tuple[Tuple[int, int, int, int], ...] = tuple(
    itertools.product((0, 1), repeat=4)
)


@dataclass(frozen=True)
class CombinationResult:
    """Success rate and speedup of one precise/imprecise combination."""

    use_x: bool
    use_lam: bool
    use_mu: bool
    use_z: bool
    success_rate: float
    speedup: float
    mean_iterations: float

    @property
    def label(self) -> str:
        """Four-character 0/1 label in (X, λ, µ, Z) order."""
        return "".join(str(int(v)) for v in (self.use_x, self.use_lam, self.use_mu, self.use_z))


@dataclass
class SensitivityReport:
    """Table I for a single test system."""

    case_name: str
    n_scenarios: int
    rows: List[CombinationResult] = field(default_factory=list)

    def as_table(self) -> List[Dict[str, object]]:
        """List of dictionaries, one per combination (easy to print or dump)."""
        return [
            {
                "X": int(r.use_x),
                "lambda": int(r.use_lam),
                "mu": int(r.use_mu),
                "Z": int(r.use_z),
                "success_rate_pct": round(100.0 * r.success_rate, 1),
                "speedup": round(r.speedup, 2) if np.isfinite(r.speedup) else None,
                "mean_iterations": round(r.mean_iterations, 2),
            }
            for r in self.rows
        ]

    def row(self, label: str) -> CombinationResult:
        """Look up a combination by its 0/1 label, e.g. ``"1111"``."""
        for r in self.rows:
            if r.label == label:
                return r
        raise KeyError(f"no combination {label!r}")


def run_sensitivity_study(
    case: Case,
    n_scenarios: int = 20,
    variation: float = 0.1,
    seed: RNGLike = 0,
    options: Optional[OPFOptions] = None,
    combinations: Sequence[Tuple[int, int, int, int]] = COMBINATIONS,
) -> SensitivityReport:
    """Reproduce Table I for ``case``.

    For each sampled scenario the problem is first solved from the default
    start to obtain both the baseline timing and the precise values of
    ``X, λ, µ, Z``; each requested combination is then warm-started with the
    selected subset of precise values.
    """
    options = options or OPFOptions()
    model = OPFModel(case, flow_limits=options.flow_limits)
    scenarios = sample_loads(case, n_scenarios, variation=variation, seed=seed)

    baselines = []
    for sample in scenarios:
        t0 = time.perf_counter()
        result = solve_opf(case, Pd_mw=sample.Pd, Qd_mvar=sample.Qd, options=options, model=model)
        elapsed = time.perf_counter() - t0
        if not result.success:
            LOGGER.warning("baseline solve failed for scenario %d; skipping", sample.scenario_id)
            continue
        baselines.append((sample, result, elapsed))
    if not baselines:
        raise RuntimeError("no baseline scenario converged; cannot run the sensitivity study")

    report = SensitivityReport(case_name=case.name, n_scenarios=len(baselines))
    for combo in combinations:
        use_x, use_lam, use_mu, use_z = (bool(v) for v in combo)
        successes: List[bool] = []
        speedups: List[float] = []
        iterations: List[float] = []
        for sample, base_result, base_elapsed in baselines:
            warm = base_result.warm_start().masked(
                use_x=use_x, use_lam=use_lam, use_mu=use_mu, use_z=use_z
            )
            t0 = time.perf_counter()
            result = solve_opf(
                case, warm_start=warm, Pd_mw=sample.Pd, Qd_mvar=sample.Qd, options=options, model=model
            )
            elapsed = time.perf_counter() - t0
            successes.append(result.success)
            iterations.append(result.iterations)
            if result.success and elapsed > 0:
                speedups.append(base_elapsed / elapsed)
        sr = float(np.mean(successes))
        report.rows.append(
            CombinationResult(
                use_x=use_x,
                use_lam=use_lam,
                use_mu=use_mu,
                use_z=use_z,
                success_rate=sr,
                speedup=float(np.mean(speedups)) if speedups else float("nan"),
                mean_iterations=float(np.mean(iterations)),
            )
        )
    return report
