"""Performance and accuracy metrics used throughout the evaluation.

* ``speedup_su`` — the end-to-end speedup metric SU of Eqn. 10 (includes MTL
  inference time and the expected cost of restarting failed cases),
* ``speedup_factor_sf`` — the inference-only speedup factor SF of Table III,
* ``cost_loss`` — the optimality loss L_cost of Table III,
* ``relative_error_summary`` — the box-plot statistics behind Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


def success_rate(successes: Sequence[bool]) -> float:
    """Fraction of problems that converged (``SR = N_suc / N_total``)."""
    successes = list(successes)
    if not successes:
        raise ValueError("success_rate of an empty sequence is undefined")
    return float(np.mean([bool(s) for s in successes]))


def speedup_su(
    t_mips: float,
    t_mtl: float,
    t_mips_warm: float,
    sr: float,
) -> float:
    """End-to-end speedup SU (Eqn. 10).

    ``t_mips`` is the cold-start solver time, ``t_mtl`` the model inference
    time, ``t_mips_warm`` the warm-started solver time and ``sr`` the success
    rate of the warm-started runs; failures pay the full cold-start time again.
    """
    if not 0.0 <= sr <= 1.0:
        raise ValueError("sr must be in [0, 1]")
    denom = t_mtl + t_mips_warm + t_mips * (1.0 - sr)
    if denom <= 0:
        raise ValueError("non-positive denominator in SU")
    return float(t_mips / denom)


def speedup_factor_sf(t_mips: Iterable[float], t_mtl: Iterable[float]) -> float:
    """Inference-only speedup factor SF (Table III): mean of per-problem ratios."""
    t_mips = np.asarray(list(t_mips), dtype=float)
    t_mtl = np.asarray(list(t_mtl), dtype=float)
    if t_mips.shape != t_mtl.shape or t_mips.size == 0:
        raise ValueError("t_mips and t_mtl must be equal-length, non-empty")
    if np.any(t_mtl <= 0):
        raise ValueError("t_mtl must be strictly positive")
    return float(np.mean(t_mips / t_mtl))


def cost_loss(true_cost: Iterable[float], predicted_cost: Iterable[float]) -> float:
    """Average fractional cost deviation L_cost in percent (Table III)."""
    c = np.asarray(list(true_cost), dtype=float)
    cp = np.asarray(list(predicted_cost), dtype=float)
    if c.shape != cp.shape or c.size == 0:
        raise ValueError("cost vectors must be equal-length, non-empty")
    return float(100.0 * np.mean(np.abs(1.0 - cp / c)))


def relative_errors(prediction: np.ndarray, truth: np.ndarray, floor: float = 1e-6) -> np.ndarray:
    """Element-wise relative error ``|pred - truth| / max(|truth|, floor)``."""
    prediction = np.asarray(prediction, dtype=float)
    truth = np.asarray(truth, dtype=float)
    return np.abs(prediction - truth) / np.maximum(np.abs(truth), floor)


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary (plus mean) of a distribution — Fig. 8's box plots."""

    minimum: float
    q25: float
    median: float
    q75: float
    maximum: float
    mean: float

    @staticmethod
    def from_values(values: np.ndarray) -> "BoxStats":
        """Compute the summary of a non-empty array."""
        values = np.asarray(values, dtype=float).ravel()
        if values.size == 0:
            raise ValueError("cannot summarise an empty array")
        q25, median, q75 = np.percentile(values, [25, 50, 75])
        return BoxStats(
            minimum=float(values.min()),
            q25=float(q25),
            median=float(median),
            q75=float(q75),
            maximum=float(values.max()),
            mean=float(values.mean()),
        )


def relative_error_summary(prediction: np.ndarray, truth: np.ndarray) -> BoxStats:
    """Box-plot statistics of the relative prediction error."""
    return BoxStats.from_values(relative_errors(prediction, truth))


def iteration_reduction(cold_iterations: Iterable[float], warm_iterations: Iterable[float]) -> float:
    """Ratio of warm-start to cold-start iteration counts (Fig. 4b labels)."""
    cold = np.asarray(list(cold_iterations), dtype=float)
    warm = np.asarray(list(warm_iterations), dtype=float)
    if cold.size == 0 or warm.size == 0:
        raise ValueError("iteration sequences must be non-empty")
    if cold.mean() <= 0:
        raise ValueError("cold iterations must be positive")
    return float(warm.mean() / cold.mean())


def normalized_series(values: np.ndarray) -> np.ndarray:
    """Min-max normalise a vector to [0, 1] (used by the Fig. 6 scatter data)."""
    values = np.asarray(values, dtype=float)
    lo, hi = values.min(), values.max()
    if hi - lo < 1e-15:
        return np.full_like(values, 0.5)
    return (values - lo) / (hi - lo)
