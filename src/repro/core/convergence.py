"""Convergence-trace capture for the diverging-case analysis (Fig. 10).

The paper contrasts the per-iteration step size and the four termination
conditions for a solve started from a *good* initial point against one started
from a *bad* initial point.  ``capture_convergence_traces`` reproduces that
experiment for any case: the good trace warm-starts from the exact solution of
a neighbouring scenario, the bad trace starts from a strongly perturbed
(infeasible-leaning) point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.grid.components import Case
from repro.grid.perturb import sample_loads
from repro.mips.result import IterationRecord
from repro.opf.model import OPFModel
from repro.opf.solver import OPFOptions, solve_opf
from repro.opf.warmstart import WarmStart
from repro.utils.rng import RNGLike, ensure_rng


@dataclass
class ConvergenceTrace:
    """One solve's per-iteration history plus its outcome."""

    label: str
    converged: bool
    iterations: int
    history: List[IterationRecord]

    def series(self) -> Dict[str, np.ndarray]:
        """Arrays of the five quantities plotted in Fig. 10."""
        return {
            "step_size": np.array([r.step_size for r in self.history]),
            "feasibility": np.array([r.feascond for r in self.history]),
            "gradient": np.array([r.gradcond for r in self.history]),
            "complementarity": np.array([r.compcond for r in self.history]),
            "cost": np.array([r.costcond for r in self.history]),
        }


def _bad_warm_start(model: OPFModel, rng: np.random.Generator, magnitude: float) -> WarmStart:
    """A deliberately poor initial point: random voltages, extreme dispatch, random duals."""
    case = model.case
    nb, ng = case.n_bus, case.n_gen
    Va = rng.uniform(-magnitude, magnitude, size=nb)
    Vm = rng.uniform(case.bus.Vmin, case.bus.Vmax)
    Pg = case.gen.Pmax / case.base_mva * rng.uniform(0.9, 1.0, size=ng)
    Qg = case.gen.Qmax / case.base_mva * rng.uniform(0.9, 1.0, size=ng)
    x = model.idx.join(Va, Vm, Pg, Qg)
    n_eq = model.n_eq_nonlin + 1  # + reference-angle equality
    xmin, xmax = model.bounds()
    n_bound_ineq = int(np.sum(np.isfinite(xmax) & (xmax > xmin))) + int(
        np.sum(np.isfinite(xmin) & (xmax > xmin))
    )
    n_ineq = model.n_ineq_nonlin + n_bound_ineq
    lam = rng.uniform(-50.0, 50.0, size=n_eq)
    mu = rng.uniform(1e-4, 50.0, size=n_ineq)
    z = rng.uniform(1e-6, 1e-3, size=n_ineq)
    return WarmStart(x=x, lam=lam, mu=mu, z=z)


def capture_convergence_traces(
    case: Case,
    seed: RNGLike = 0,
    variation: float = 0.1,
    bad_magnitude: float = 0.6,
    options: Optional[OPFOptions] = None,
) -> Dict[str, ConvergenceTrace]:
    """Return ``{"good": trace, "bad": trace, "default": trace}`` for one scenario.

    * ``default`` — the standard cold start,
    * ``good`` — warm-started from the exact solution of a nearby scenario,
    * ``bad`` — started from a random, aggressive initial point.
    """
    options = options or OPFOptions()
    rng = ensure_rng(seed)
    model = OPFModel(case, flow_limits=options.flow_limits)
    target, neighbour = sample_loads(case, 2, variation=variation, seed=rng)

    baseline = solve_opf(case, Pd_mw=target.Pd, Qd_mvar=target.Qd, options=options, model=model)
    neighbour_solution = solve_opf(
        case, Pd_mw=neighbour.Pd, Qd_mvar=neighbour.Qd, options=options, model=model
    )

    good = solve_opf(
        case,
        warm_start=neighbour_solution.warm_start(),
        Pd_mw=target.Pd,
        Qd_mvar=target.Qd,
        options=options,
        model=model,
    )
    bad = solve_opf(
        case,
        warm_start=_bad_warm_start(model, rng, bad_magnitude),
        Pd_mw=target.Pd,
        Qd_mvar=target.Qd,
        options=options,
        model=model,
    )

    return {
        "default": ConvergenceTrace(
            label="default start",
            converged=baseline.success,
            iterations=baseline.iterations,
            history=baseline.history,
        ),
        "good": ConvergenceTrace(
            label="good initial point",
            converged=good.success,
            iterations=good.iterations,
            history=good.history,
        ),
        "bad": ConvergenceTrace(
            label="bad initial point",
            converged=bad.success,
            iterations=bad.iterations,
            history=bad.history,
        ),
    }
