"""Runtime breakdown of the online phase (Fig. 5).

The paper normalises every phase to the total MIPS-only runtime and reports
four components for Smart-PGSim: problem pre-processing, Newton updates (the
warm-started solve), MTL inference and restarts of failed cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.framework import OnlineEvaluation


@dataclass(frozen=True)
class RuntimeBreakdown:
    """Per-phase wall-clock totals (seconds) for one evaluation set.

    ``newton_phases`` further splits the Newton-update bar into the measured
    MIPS component times (callback evaluation, KKT assembly, factorisation,
    back-substitution) collected by the solver instrumentation; it is empty
    when the evaluation was produced without phase recording.
    """

    preprocess: float
    newton_update: float
    inference: float
    restart: float
    mips_total: float
    newton_phases: Dict[str, float] = field(default_factory=dict)

    def newton_phase_fractions(self) -> Dict[str, float]:
        """Measured Newton components as fractions of the warm-solve total."""
        if self.newton_update <= 0:
            return {}
        return {
            phase: seconds / self.newton_update
            for phase, seconds in self.newton_phases.items()
        }

    @property
    def smart_total(self) -> float:
        """Total Smart-PGSim runtime (all four phases)."""
        return self.preprocess + self.newton_update + self.inference + self.restart

    def normalized(self) -> Dict[str, float]:
        """Every phase divided by the MIPS-only total, as plotted in Fig. 5."""
        if self.mips_total <= 0:
            raise ValueError("mips_total must be positive")
        return {
            "preprocess": self.preprocess / self.mips_total,
            "newton_update": self.newton_update / self.mips_total,
            "inference": self.inference / self.mips_total,
            "restart": self.restart / self.mips_total,
            "smart_pgsim_total": self.smart_total / self.mips_total,
        }


def breakdown_from_evaluation(
    evaluation: OnlineEvaluation, preprocess_fraction: float = 0.05
) -> RuntimeBreakdown:
    """Build the Fig. 5 breakdown from an :class:`OnlineEvaluation`.

    Pre-processing (admittance construction, problem assembly) is shared by
    both pipelines; it is charged as ``preprocess_fraction`` of the cold-start
    solver time, which matches the small slice visible in the paper's figure.
    """
    if not evaluation.records:
        raise ValueError("evaluation has no records")
    totals = evaluation.total_times()
    preprocess = preprocess_fraction * totals["cold_solve"]
    return RuntimeBreakdown(
        preprocess=preprocess,
        newton_update=totals["warm_solve"],
        inference=totals["inference"],
        restart=totals["restart"],
        mips_total=totals["cold_solve"] + preprocess,
        newton_phases=evaluation.solver_phase_totals(),
    )
