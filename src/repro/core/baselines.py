"""Comparison baselines.

``DirectPredictionBaseline`` evaluates the Zamzam & Baker style of NN usage:
the network output *is* the solution — no numerical solver runs at all.  This
is what Table III contrasts Smart-PGSim against (speedup factor SF and cost
loss L_cost); the paper then argues that feeding the prediction through MIPS
instead recovers exact optimality at a modest cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.metrics import cost_loss, speedup_factor_sf
from repro.data.dataset import OPFDataset
from repro.mtl.trainer import MTLTrainer
from repro.opf.costs import total_cost
from repro.opf.model import OPFModel


@dataclass
class DirectPredictionReport:
    """Table III row for one test system."""

    case_name: str
    speedup_factor: float
    cost_loss_pct: float
    inference_seconds: np.ndarray
    solver_seconds: np.ndarray
    predicted_costs: np.ndarray
    true_costs: np.ndarray
    feasibility_violation: float

    def summary(self) -> Dict[str, float]:
        """Headline numbers in the Table III format."""
        return {
            "SF": self.speedup_factor,
            "Lcost_pct": self.cost_loss_pct,
            "max_balance_violation_pu": self.feasibility_violation,
        }


class DirectPredictionBaseline:
    """Use the trained network's primal prediction directly as the final answer.

    Generation limits are enforced by clamping (as in the prior work the paper
    compares with); voltage magnitudes are clamped to their bus limits.
    """

    def __init__(self, trainer: MTLTrainer, opf_model: OPFModel):
        self.trainer = trainer
        self.opf_model = opf_model

    def _clamp(self, pred: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        case = self.opf_model.case
        base = case.base_mva
        out = {k: np.array(v, dtype=float, copy=True) for k, v in pred.items()}
        out["Pg"] = np.clip(out["Pg"], case.gen.Pmin / base, case.gen.Pmax / base)
        out["Qg"] = np.clip(out["Qg"], case.gen.Qmin / base, case.gen.Qmax / base)
        out["Vm"] = np.clip(out["Vm"], case.bus.Vmin, case.bus.Vmax)
        return out

    def evaluate(self, dataset: OPFDataset) -> DirectPredictionReport:
        """Compute SF / L_cost over ``dataset`` (typically the validation split)."""
        case = self.opf_model.case
        n = dataset.n_samples
        inference_seconds = np.zeros(n)
        predicted_costs = np.zeros(n)
        violations = np.zeros(n)

        from repro.powerflow.injections import power_balance_mismatch, mismatch_norm, polar_to_complex

        for i in range(n):
            t0 = time.perf_counter()
            pred = self.trainer.predict_physical(dataset.inputs[i : i + 1])
            inference_seconds[i] = time.perf_counter() - t0
            pred = self._clamp({k: v[0] for k, v in pred.items()})
            predicted_costs[i] = total_cost(case, pred["Pg"] * case.base_mva)
            V = polar_to_complex(pred["Va"], pred["Vm"])
            mis = power_balance_mismatch(
                case,
                self.opf_model.adm,
                V,
                pred["Pg"],
                pred["Qg"],
                Pd=dataset.Pd_mw[i],
                Qd=dataset.Qd_mw[i],
            )
            violations[i] = mismatch_norm(mis)

        solver_seconds = dataset.solve_seconds.copy()
        return DirectPredictionReport(
            case_name=case.name,
            speedup_factor=speedup_factor_sf(solver_seconds, inference_seconds),
            cost_loss_pct=cost_loss(dataset.objectives, predicted_costs),
            inference_seconds=inference_seconds,
            solver_seconds=solver_seconds,
            predicted_costs=predicted_costs,
            true_costs=dataset.objectives.copy(),
            feasibility_violation=float(violations.max()),
        )
