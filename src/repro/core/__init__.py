"""Smart-PGSim framework: offline/online phases, metrics, sensitivity, baselines."""

from repro.core.baselines import DirectPredictionBaseline, DirectPredictionReport
from repro.core.breakdown import RuntimeBreakdown, breakdown_from_evaluation
from repro.core.convergence import ConvergenceTrace, capture_convergence_traces
from repro.core.framework import (
    OfflineArtifacts,
    OnlineEvaluation,
    OnlineRecord,
    SmartPGSim,
    SmartPGSimConfig,
)
from repro.core.metrics import (
    BoxStats,
    cost_loss,
    iteration_reduction,
    normalized_series,
    relative_error_summary,
    relative_errors,
    speedup_factor_sf,
    speedup_su,
    success_rate,
)
from repro.core.sensitivity import (
    COMBINATIONS,
    CombinationResult,
    SensitivityReport,
    run_sensitivity_study,
)

__all__ = [
    "SmartPGSim",
    "SmartPGSimConfig",
    "OfflineArtifacts",
    "OnlineEvaluation",
    "OnlineRecord",
    "DirectPredictionBaseline",
    "DirectPredictionReport",
    "RuntimeBreakdown",
    "breakdown_from_evaluation",
    "ConvergenceTrace",
    "capture_convergence_traces",
    "BoxStats",
    "cost_loss",
    "iteration_reduction",
    "normalized_series",
    "relative_error_summary",
    "relative_errors",
    "speedup_factor_sf",
    "speedup_su",
    "success_rate",
    "COMBINATIONS",
    "CombinationResult",
    "SensitivityReport",
    "run_sensitivity_study",
]
