"""The Smart-PGSim framework: offline training phase and online acceleration.

``SmartPGSim`` ties the substrates together exactly as Fig. 1 of the paper
describes, but since the serving-engine split it is a *thin orchestrator*:

* **offline** — sample load scenarios, collect ground truth through the pooled
  batch-solve path (:func:`repro.data.dataset.generate_dataset`), train the
  physics-informed MTL model, then wrap the result in a
  :class:`~repro.engine.engine.WarmStartEngine`;
* **online** — delegate to the engine: one batched MTL forward pass produces
  warm starts for every problem, the persistent solver fleet dispatches the
  MIPS solves, and the configured
  :class:`~repro.engine.fallback.FallbackPolicy` recovers failures (the
  paper's cold restart by default), so the workflow always converges.

The per-problem :class:`~repro.engine.records.OnlineRecord` and the
aggregated :class:`~repro.engine.records.OnlineEvaluation` live in
:mod:`repro.engine.records` and are re-exported here for backwards
compatibility.  A trained pipeline can be persisted with
``framework.engine.save_artifact(path)`` and served later without retraining
via :meth:`repro.engine.engine.WarmStartEngine.load_artifact`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.data.dataset import OPFDataset, TASK_NAMES, generate_dataset
from repro.engine.engine import WarmStartEngine
from repro.engine.fallback import get_fallback_policy
from repro.engine.records import OnlineEvaluation, OnlineRecord
from repro.grid.components import Case
from repro.mtl.config import MTLConfig, fast_config
from repro.mtl.model import SmartPGSimMTL, TaskDimensions
from repro.mtl.separate import SeparateTaskNetworks
from repro.mtl.trainer import MTLTrainer, TrainingHistory
from repro.opf.model import OPFModel
from repro.opf.solver import OPFOptions
from repro.parallel.pool import EXECUTION_MODES
from repro.parallel.scheduler import SCHEDULES
from repro.utils.logging import get_logger

__all__ = [
    "SmartPGSim",
    "SmartPGSimConfig",
    "OfflineArtifacts",
    "OnlineRecord",
    "OnlineEvaluation",
]

LOGGER = get_logger("core")


@dataclass(frozen=True)
class SmartPGSimConfig:
    """Configuration of one offline/online experiment."""

    n_samples: int = 120
    train_fraction: float = 0.8
    load_variation: float = 0.1
    seed: int = 0
    #: ``"mtl"`` (shared trunk) or ``"separate"`` (per-task networks baseline).
    model_type: str = "mtl"
    use_physics: bool = True
    mtl: MTLConfig = field(default_factory=fast_config)
    opf: OPFOptions = field(default_factory=OPFOptions)
    #: Fallback policy applied to failed warm solves (``"cold_restart"``,
    #: ``"relaxed_warm"``, ``"none"`` or a policy instance).
    fallback: str = "cold_restart"
    #: Solver workers used for ground-truth generation and online dispatch.
    n_workers: int = 1
    #: Solver execution mode used for *both* ground-truth generation and
    #: online serving: ``"batch"`` (lockstep batched MIPS, the default) or
    #: ``"scenario"`` (one solve at a time).  Using one mode on both sides
    #: keeps the Fig. 4 warm-vs-cold ratios apples-to-apples: each side's
    #: per-problem cost is the additive lockstep wall share (see
    #: :func:`repro.data.dataset.generate_dataset`).
    execution: str = "batch"
    #: Fleet scheduling policy for both sides: ``"static"`` (cost-balanced
    #: fixed chunks, the default — keeps ground truth bit-pinned to the PR 4
    #: semantics tests) or ``"steal"`` (elastic micro-batch queue with work
    #: stealing; see :mod:`repro.parallel.scheduler`).
    schedule: str = "static"
    #: Micro-batch size for the elastic scheduler (auto-sized when None).
    microbatch: Optional[int] = None

    def __post_init__(self) -> None:
        if self.model_type not in ("mtl", "separate"):
            raise ValueError("model_type must be 'mtl' or 'separate'")
        if self.n_samples < 5:
            raise ValueError("need at least 5 samples to train and validate")
        if not 0 < self.train_fraction < 1:
            raise ValueError("train_fraction must be in (0, 1)")
        if self.n_workers < 1:
            raise ValueError("n_workers must be positive")
        if self.execution not in EXECUTION_MODES:
            raise ValueError(f"execution must be one of {EXECUTION_MODES}")
        if self.schedule not in SCHEDULES:
            raise ValueError(f"schedule must be one of {SCHEDULES}")
        if self.microbatch is not None and self.microbatch < 1:
            raise ValueError("microbatch must be positive")
        get_fallback_policy(self.fallback)  # validate eagerly


@dataclass
class OfflineArtifacts:
    """Everything produced by the offline phase."""

    dataset: OPFDataset
    train_set: OPFDataset
    validation_set: OPFDataset
    trainer: MTLTrainer
    history: TrainingHistory
    dataset_seconds: float
    training_seconds: float


class SmartPGSim:
    """Offline/online driver for one test system."""

    def __init__(self, case: Case, config: Optional[SmartPGSimConfig] = None):
        self.case = case
        self.config = config or SmartPGSimConfig()
        self.opf_model = OPFModel(case, flow_limits=self.config.opf.flow_limits)
        self.artifacts: Optional[OfflineArtifacts] = None
        self._engine: Optional[WarmStartEngine] = None

    # ------------------------------------------------------------------ offline
    def offline(self, dataset: Optional[OPFDataset] = None) -> OfflineArtifacts:
        """Run the offline phase (optionally reusing a pre-generated dataset)."""
        cfg = self.config
        t0 = time.perf_counter()
        if dataset is None:
            dataset = generate_dataset(
                self.case,
                cfg.n_samples,
                variation=cfg.load_variation,
                seed=cfg.seed,
                options=cfg.opf,
                model=self.opf_model,
                n_workers=cfg.n_workers,
                execution=cfg.execution,
                schedule=cfg.schedule,
                microbatch=cfg.microbatch,
            )
        dataset_seconds = time.perf_counter() - t0

        train_set, validation_set = dataset.split(cfg.train_fraction, seed=cfg.seed)
        dims = TaskDimensions(
            n_bus=self.case.n_bus,
            n_gen=self.case.n_gen,
            n_eq=dataset.task_dim("lam"),
            n_ineq=dataset.task_dim("mu"),
        )
        network_cls = SmartPGSimMTL if cfg.model_type == "mtl" else SeparateTaskNetworks
        network = network_cls(dims, cfg.mtl, seed=cfg.seed)
        trainer = MTLTrainer(
            network,
            train_set,
            self.opf_model,
            config=cfg.mtl,
            use_physics=cfg.use_physics,
        )
        t1 = time.perf_counter()
        history = trainer.train(validation_set)
        training_seconds = time.perf_counter() - t1

        self.artifacts = OfflineArtifacts(
            dataset=dataset,
            train_set=train_set,
            validation_set=validation_set,
            trainer=trainer,
            history=history,
            dataset_seconds=dataset_seconds,
            training_seconds=training_seconds,
        )
        if self._engine is not None:  # retraining: shut the old fleets down first
            self._engine.close()
        self._engine = WarmStartEngine.from_trainer(
            trainer,
            opf_options=cfg.opf,
            fallback=cfg.fallback,
            execution=cfg.execution,
            schedule=cfg.schedule,
            microbatch=cfg.microbatch,
        )
        LOGGER.info(
            "%s offline done: %d samples, dataset %.1fs, training %.1fs",
            self.case.name,
            dataset.n_samples,
            dataset_seconds,
            training_seconds,
        )
        return self.artifacts

    def _require_offline(self) -> OfflineArtifacts:
        if self.artifacts is None:
            raise RuntimeError("call offline() before online evaluation")
        return self.artifacts

    @property
    def engine(self) -> WarmStartEngine:
        """The serving engine wrapping the trained model (requires ``offline``)."""
        self._require_offline()
        assert self._engine is not None
        return self._engine

    # ------------------------------------------------------------------- online
    def online_evaluate(
        self,
        dataset: Optional[OPFDataset] = None,
        max_problems: Optional[int] = None,
        n_workers: Optional[int] = None,
    ) -> OnlineEvaluation:
        """Warm-start every problem of ``dataset`` (default: the validation split).

        Thin wrapper over :meth:`WarmStartEngine.evaluate`: batched inference,
        fleet dispatch, pluggable fallback.
        """
        artifacts = self._require_offline()
        dataset = dataset or artifacts.validation_set
        return self.engine.evaluate(
            dataset,
            max_problems=max_problems,
            n_workers=self.config.n_workers if n_workers is None else n_workers,
        )

    # ---------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Shut down the serving engine's solver fleets (idempotent)."""
        if self._engine is not None:
            self._engine.close()

    def __enter__(self) -> "SmartPGSim":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -------------------------------------------------------- prediction accuracy
    def prediction_accuracy(self, dataset: Optional[OPFDataset] = None) -> Dict[str, Dict[str, np.ndarray]]:
        """Normalised prediction-vs-ground-truth pairs per task (Fig. 6 scatter data)."""
        artifacts = self._require_offline()
        dataset = dataset or artifacts.validation_set
        pred = artifacts.trainer.predict_physical(dataset.inputs)
        out: Dict[str, Dict[str, np.ndarray]] = {}
        for task in TASK_NAMES:
            truth = dataset.targets[task]
            lo = truth.min()
            span = max(truth.max() - lo, 1e-12)
            out[task] = {
                "prediction": (pred[task] - lo) / span,
                "ground_truth": (truth - lo) / span,
            }
        return out
