"""The Smart-PGSim framework: offline training phase and online acceleration.

``SmartPGSim`` ties the substrates together exactly as Fig. 1 of the paper
describes:

* **offline** — sample load scenarios, solve them with MIPS to collect ground
  truth, train the physics-informed MTL model;
* **online** — for a new problem, run MTL inference to obtain a warm-start
  point, hand it to MIPS, and fall back to the default start if the
  warm-started run fails, so the workflow always converges.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.metrics import iteration_reduction, speedup_su, success_rate
from repro.data.dataset import OPFDataset, TASK_NAMES, generate_dataset
from repro.grid.components import Case
from repro.mtl.config import MTLConfig, fast_config
from repro.mtl.model import SmartPGSimMTL, TaskDimensions
from repro.mtl.separate import SeparateTaskNetworks
from repro.mtl.trainer import MTLTrainer, TrainingHistory
from repro.opf.model import OPFModel
from repro.opf.solver import OPFOptions, solve_opf
from repro.utils.logging import get_logger

LOGGER = get_logger("core")


@dataclass(frozen=True)
class SmartPGSimConfig:
    """Configuration of one offline/online experiment."""

    n_samples: int = 120
    train_fraction: float = 0.8
    load_variation: float = 0.1
    seed: int = 0
    #: ``"mtl"`` (shared trunk) or ``"separate"`` (per-task networks baseline).
    model_type: str = "mtl"
    use_physics: bool = True
    mtl: MTLConfig = field(default_factory=fast_config)
    opf: OPFOptions = field(default_factory=OPFOptions)

    def __post_init__(self) -> None:
        if self.model_type not in ("mtl", "separate"):
            raise ValueError("model_type must be 'mtl' or 'separate'")
        if self.n_samples < 5:
            raise ValueError("need at least 5 samples to train and validate")
        if not 0 < self.train_fraction < 1:
            raise ValueError("train_fraction must be in (0, 1)")


@dataclass
class OfflineArtifacts:
    """Everything produced by the offline phase."""

    dataset: OPFDataset
    train_set: OPFDataset
    validation_set: OPFDataset
    trainer: MTLTrainer
    history: TrainingHistory
    dataset_seconds: float
    training_seconds: float


@dataclass(frozen=True)
class OnlineRecord:
    """Outcome of one online (warm-started) problem.

    ``solver_phase_seconds`` carries the per-phase split of the successful
    solve (callback evaluation / KKT assembly / factorisation / back
    substitution) as measured by the MIPS instrumentation.
    """

    scenario_id: int
    success: bool
    used_fallback: bool
    iterations_warm: int
    iterations_cold: float
    inference_seconds: float
    warm_solve_seconds: float
    cold_solve_seconds: float
    restart_seconds: float
    cost_warm: float
    cost_cold: float
    solver_phase_seconds: Dict[str, float] = field(default_factory=dict)


@dataclass
class OnlineEvaluation:
    """Aggregated online results for one test system (Fig. 4 / Fig. 5 data)."""

    case_name: str
    records: List[OnlineRecord] = field(default_factory=list)

    @property
    def n_problems(self) -> int:
        """Number of evaluated problems."""
        return len(self.records)

    @property
    def success_rate(self) -> float:
        """Warm-start success rate before any restart (Fig. 4c)."""
        return success_rate([r.success for r in self.records])

    @property
    def speedup(self) -> float:
        """End-to-end speedup SU of Eqn. 10 over the evaluation set (Fig. 4a)."""
        t_mips = float(np.mean([r.cold_solve_seconds for r in self.records]))
        t_mtl = float(np.mean([r.inference_seconds for r in self.records]))
        t_warm = float(np.mean([r.warm_solve_seconds for r in self.records if r.success] or [t_mips]))
        return speedup_su(t_mips, t_mtl, t_warm, self.success_rate)

    @property
    def iteration_ratio(self) -> float:
        """Warm-start iterations as a fraction of cold-start iterations (Fig. 4b)."""
        return iteration_reduction(
            [r.iterations_cold for r in self.records],
            [r.iterations_warm for r in self.records if r.success] or [r.iterations_cold for r in self.records],
        )

    @property
    def mean_iterations_warm(self) -> float:
        """Mean warm-start iteration count over successful problems."""
        values = [r.iterations_warm for r in self.records if r.success]
        return float(np.mean(values)) if values else float("nan")

    @property
    def mean_iterations_cold(self) -> float:
        """Mean cold-start iteration count."""
        return float(np.mean([r.iterations_cold for r in self.records]))

    @property
    def mean_cost_deviation(self) -> float:
        """Mean relative deviation of warm-started cost from the cold-start optimum."""
        devs = [
            abs(r.cost_warm - r.cost_cold) / max(abs(r.cost_cold), 1e-12)
            for r in self.records
            if r.success
        ]
        return float(np.mean(devs)) if devs else float("nan")

    def total_times(self) -> Dict[str, float]:
        """Summed per-phase wall-clock times (the Fig. 5 breakdown numerators)."""
        return {
            "inference": float(sum(r.inference_seconds for r in self.records)),
            "warm_solve": float(sum(r.warm_solve_seconds for r in self.records)),
            "restart": float(sum(r.restart_seconds for r in self.records)),
            "cold_solve": float(sum(r.cold_solve_seconds for r in self.records)),
        }

    def solver_phase_totals(self) -> Dict[str, float]:
        """Summed per-phase MIPS component times over the warm-started solves.

        The keys are the MIPS instrumentation phases (``eval``, ``assembly``,
        ``factorization``, ``backsolve``); these are the *measured* component
        times behind the Fig. 5 Newton-update bar.
        """
        totals: Dict[str, float] = {}
        for record in self.records:
            for phase, seconds in record.solver_phase_seconds.items():
                totals[phase] = totals.get(phase, 0.0) + seconds
        return totals


class SmartPGSim:
    """Offline/online driver for one test system."""

    def __init__(self, case: Case, config: Optional[SmartPGSimConfig] = None):
        self.case = case
        self.config = config or SmartPGSimConfig()
        self.opf_model = OPFModel(case, flow_limits=self.config.opf.flow_limits)
        self.artifacts: Optional[OfflineArtifacts] = None

    # ------------------------------------------------------------------ offline
    def offline(self, dataset: Optional[OPFDataset] = None) -> OfflineArtifacts:
        """Run the offline phase (optionally reusing a pre-generated dataset)."""
        cfg = self.config
        t0 = time.perf_counter()
        if dataset is None:
            dataset = generate_dataset(
                self.case,
                cfg.n_samples,
                variation=cfg.load_variation,
                seed=cfg.seed,
                options=cfg.opf,
                model=self.opf_model,
            )
        dataset_seconds = time.perf_counter() - t0

        train_set, validation_set = dataset.split(cfg.train_fraction, seed=cfg.seed)
        dims = TaskDimensions(
            n_bus=self.case.n_bus,
            n_gen=self.case.n_gen,
            n_eq=dataset.task_dim("lam"),
            n_ineq=dataset.task_dim("mu"),
        )
        network_cls = SmartPGSimMTL if cfg.model_type == "mtl" else SeparateTaskNetworks
        network = network_cls(dims, cfg.mtl, seed=cfg.seed)
        trainer = MTLTrainer(
            network,
            train_set,
            self.opf_model,
            config=cfg.mtl,
            use_physics=cfg.use_physics,
        )
        t1 = time.perf_counter()
        history = trainer.train(validation_set)
        training_seconds = time.perf_counter() - t1

        self.artifacts = OfflineArtifacts(
            dataset=dataset,
            train_set=train_set,
            validation_set=validation_set,
            trainer=trainer,
            history=history,
            dataset_seconds=dataset_seconds,
            training_seconds=training_seconds,
        )
        LOGGER.info(
            "%s offline done: %d samples, dataset %.1fs, training %.1fs",
            self.case.name,
            dataset.n_samples,
            dataset_seconds,
            training_seconds,
        )
        return self.artifacts

    def _require_offline(self) -> OfflineArtifacts:
        if self.artifacts is None:
            raise RuntimeError("call offline() before online evaluation")
        return self.artifacts

    # ------------------------------------------------------------------- online
    def online_evaluate(
        self,
        dataset: Optional[OPFDataset] = None,
        max_problems: Optional[int] = None,
    ) -> OnlineEvaluation:
        """Warm-start every problem of ``dataset`` (default: the validation split).

        Cold-start timings and iteration counts are taken from the dataset
        (they were measured while generating the ground truth), so the online
        phase only pays for inference plus the warm-started solve — exactly
        like the deployed system.
        """
        artifacts = self._require_offline()
        dataset = dataset or artifacts.validation_set
        n = dataset.n_samples if max_problems is None else min(max_problems, dataset.n_samples)

        evaluation = OnlineEvaluation(case_name=self.case.name)
        for i in range(n):
            t0 = time.perf_counter()
            warm = artifacts.trainer.warm_start_for(dataset.inputs[i])
            inference_seconds = time.perf_counter() - t0

            result = solve_opf(
                self.case,
                warm_start=warm,
                Pd_mw=dataset.Pd_mw[i],
                Qd_mvar=dataset.Qd_mw[i],
                options=self.config.opf,
                model=self.opf_model,
            )
            restart_seconds = 0.0
            used_fallback = False
            final = result
            if not result.success:
                used_fallback = True
                restart_seconds = result.total_seconds
                final = solve_opf(
                    self.case,
                    Pd_mw=dataset.Pd_mw[i],
                    Qd_mvar=dataset.Qd_mw[i],
                    options=self.config.opf,
                    model=self.opf_model,
                )

            evaluation.records.append(
                OnlineRecord(
                    scenario_id=i,
                    success=result.success,
                    used_fallback=used_fallback,
                    iterations_warm=result.iterations if result.success else final.iterations,
                    iterations_cold=float(dataset.iterations[i]),
                    inference_seconds=inference_seconds,
                    warm_solve_seconds=result.total_seconds if result.success else final.total_seconds,
                    cold_solve_seconds=float(dataset.solve_seconds[i]),
                    restart_seconds=restart_seconds,
                    cost_warm=final.objective,
                    cost_cold=float(dataset.objectives[i]),
                    solver_phase_seconds=dict(final.phase_seconds),
                )
            )
        return evaluation

    # -------------------------------------------------------- prediction accuracy
    def prediction_accuracy(self, dataset: Optional[OPFDataset] = None) -> Dict[str, Dict[str, np.ndarray]]:
        """Normalised prediction-vs-ground-truth pairs per task (Fig. 6 scatter data)."""
        artifacts = self._require_offline()
        dataset = dataset or artifacts.validation_set
        pred = artifacts.trainer.predict_physical(dataset.inputs)
        out: Dict[str, Dict[str, np.ndarray]] = {}
        for task in TASK_NAMES:
            truth = dataset.targets[task]
            lo = truth.min()
            span = max(truth.max() - lo, 1e-12)
            out[task] = {
                "prediction": (pred[task] - lo) / span,
                "ground_truth": (truth - lo) / span,
            }
        return out
