"""Min-max normalisation of model inputs and task targets.

The paper pre-processes the raw ground-truth values into the normalised range
``[0, 1]`` so that sigmoid output layers can act as hard bounds on ``Z`` and
``µ``.  The same scheme is applied to the inputs ``[Pd, Qd]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

import numpy as np

from repro.nn.tensor import Tensor

ArrayOrTensor = Union[np.ndarray, Tensor]


@dataclass
class MinMaxScaler:
    """Per-dimension min-max scaler mapping data into ``[0, 1]``.

    Dimensions with (near-)zero range are mapped to 0.5 by widening the span
    symmetrically, which keeps the inverse transform exact at the observed
    value.
    """

    lo: np.ndarray
    span: np.ndarray

    @staticmethod
    def fit(values: np.ndarray, min_span: float = 1e-8) -> "MinMaxScaler":
        """Fit the scaler on an ``(n_samples, dim)`` array."""
        values = np.asarray(values, dtype=float)
        if values.ndim != 2:
            raise ValueError("expected a 2-D array of samples")
        lo = values.min(axis=0)
        hi = values.max(axis=0)
        span = hi - lo
        # Dimensions with a (near-)zero range are widened symmetrically around
        # their centre so the observed values still map inside [0, 1].
        degenerate = span < min_span
        center = 0.5 * (lo + hi)
        lo = np.where(degenerate, center - 0.5 * min_span, lo)
        span = np.where(degenerate, min_span, span)
        return MinMaxScaler(lo=lo, span=span)

    def transform(self, values: ArrayOrTensor) -> ArrayOrTensor:
        """Map raw values into the normalised space (works on arrays and tensors)."""
        return (values - self.lo) / self.span

    def inverse(self, normalised: ArrayOrTensor) -> ArrayOrTensor:
        """Map normalised values back to physical units."""
        return normalised * self.span + self.lo

    @property
    def dim(self) -> int:
        """Number of dimensions handled by the scaler."""
        return int(self.lo.shape[0])


@dataclass
class DatasetNormalizer:
    """Bundle of the input scaler and one scaler per prediction task."""

    inputs: MinMaxScaler
    tasks: Dict[str, MinMaxScaler]

    @staticmethod
    def fit(inputs: np.ndarray, targets: Dict[str, np.ndarray]) -> "DatasetNormalizer":
        """Fit all scalers on the training split."""
        return DatasetNormalizer(
            inputs=MinMaxScaler.fit(inputs),
            tasks={task: MinMaxScaler.fit(values) for task, values in targets.items()},
        )

    def normalize_inputs(self, inputs: ArrayOrTensor) -> ArrayOrTensor:
        """Normalise a batch of input feature vectors."""
        return self.inputs.transform(inputs)

    def normalize_targets(self, targets: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Normalise every task's target array."""
        return {task: self.tasks[task].transform(values) for task, values in targets.items()}

    def denormalize_task(self, task: str, values: ArrayOrTensor) -> ArrayOrTensor:
        """Map one task's normalised predictions back to physical units."""
        return self.tasks[task].inverse(values)

    def denormalize_predictions(self, predictions: Dict[str, ArrayOrTensor]) -> Dict[str, ArrayOrTensor]:
        """Map a full prediction dictionary back to physical units."""
        return {task: self.denormalize_task(task, values) for task, values in predictions.items()}
