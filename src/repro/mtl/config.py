"""Configuration of the multitask-learning model and its training loop."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class MTLConfig:
    """Hyper-parameters of the Smart-PGSim MTL model.

    The shared trunk follows the paper's topology: five fully-connected layers
    whose widths grow from the input size (2·nb) by the factors in
    ``shared_layer_scales`` (600 → 720 → 840 → 960 → 1080 for the 300-bus
    system).  ``width_cap`` optionally limits the trunk width so the NumPy
    implementation stays fast on laptops; set it to ``None`` for the faithful
    sizes.
    """

    shared_layer_scales: Tuple[float, ...] = (1.0, 1.2, 1.4, 1.6, 1.8)
    width_cap: Optional[int] = 256
    #: Hidden width of each task-specific estimator, as a fraction of the
    #: trunk output width (with a floor of ``head_min_width``).
    head_width_fraction: float = 0.5
    head_min_width: int = 32
    #: Per-task weights ``W_v`` of the supervised Charbonnier loss (Eqn. 4).
    task_weights: Dict[str, float] = field(
        default_factory=lambda: {
            "Va": 1.0,
            "Vm": 1.0,
            "Pg": 1.0,
            "Qg": 1.0,
            "lam": 0.5,
            "z": 0.5,
            "mu": 0.5,
        }
    )
    #: Charbonnier numerical-stability constant (paper: 1e-9).
    charbonnier_eps: float = 1e-9

    # ------------------------------------------------------- physics-informed terms
    use_physics: bool = True
    weight_ac: float = 1.0
    weight_ieq: float = 0.1
    weight_cost: float = 0.1
    weight_lag: float = 0.01
    #: Exponent clip used inside the exponential inequality penalties to keep
    #: early-training iterates from overflowing.
    ieq_exp_clip: float = 20.0

    # ------------------------------------------------------------------ training
    epochs: int = 60
    batch_size: int = 32
    learning_rate: float = 1e-3
    weight_decay: float = 0.0
    grad_clip: float = 5.0
    #: Apply the auxiliary-task ``detach()`` knob every ``detach_period``
    #: epochs (0 disables the knob entirely).
    detach_period: int = 2
    seed: int = 0

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent settings."""
        if len(self.shared_layer_scales) < 1:
            raise ValueError("need at least one shared layer")
        if any(s <= 0 for s in self.shared_layer_scales):
            raise ValueError("shared layer scales must be positive")
        if self.width_cap is not None and self.width_cap < 8:
            raise ValueError("width_cap must be at least 8")
        if self.epochs < 1 or self.batch_size < 1:
            raise ValueError("epochs and batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.detach_period < 0:
            raise ValueError("detach_period must be non-negative")
        missing = {"Va", "Vm", "Pg", "Qg", "lam", "z", "mu"} - set(self.task_weights)
        if missing:
            raise ValueError(f"task_weights missing entries for {sorted(missing)}")


def fast_config(**overrides) -> MTLConfig:
    """A small configuration suitable for tests and quick benchmarks."""
    defaults = dict(
        shared_layer_scales=(1.0, 1.2),
        width_cap=64,
        head_min_width=16,
        epochs=15,
        batch_size=16,
        learning_rate=2e-3,
    )
    defaults.update(overrides)
    return MTLConfig(**defaults)
