"""The Smart-PGSim multitask-learning model (Section VI of the paper).

The network maps the load vector ``[Pd, Qd]`` to seven task outputs:

* **main tasks** — the primal solution components ``Va, Vm, Pg, Qg``;
* **auxiliary tasks** — the equality multipliers ``λ``, the slacks ``Z`` and
  the inequality multipliers ``µ``.

Information sharing happens in the five shared (trunk) layers; each task has
its own estimator head.  Two domain-specific mechanisms from the paper are
implemented exactly:

* **feature prioritisation / detach knob** — when ``detach_auxiliary=True``
  the auxiliary heads receive detached copies of the trunk features and of the
  predicted ``X``, so their gradients cannot perturb the layers that serve the
  main task;
* **physics-dependent hierarchy** — ``Z`` is predicted from the trunk features
  *and* the predicted ``X``; ``µ`` additionally sees the predicted ``Z``,
  mirroring the computation order of the interior-point update.

``Z`` and ``µ`` heads end in a sigmoid so that (in normalised target space)
their outputs are hard-bounded to ``[0, 1]`` — the paper's hard-constraint
treatment of the positivity requirements ``Z > 0`` and ``µ > 0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.mtl.config import MTLConfig
from repro.nn.modules import Linear, Module, ReLU, Sequential, Sigmoid, mlp
from repro.nn.tensor import Tensor, as_tensor, concatenate
from repro.utils.rng import ensure_rng

#: Main (primal solution) tasks.
MAIN_TASKS = ("Va", "Vm", "Pg", "Qg")
#: Auxiliary (dual / slack) tasks.
AUXILIARY_TASKS = ("lam", "z", "mu")


@dataclass(frozen=True)
class TaskDimensions:
    """Output dimensionality of each prediction task for one test system."""

    n_bus: int
    n_gen: int
    n_eq: int
    n_ineq: int

    def as_dict(self) -> Dict[str, int]:
        """Mapping task name → output width."""
        return {
            "Va": self.n_bus,
            "Vm": self.n_bus,
            "Pg": self.n_gen,
            "Qg": self.n_gen,
            "lam": self.n_eq,
            "z": self.n_ineq,
            "mu": self.n_ineq,
        }

    @property
    def n_inputs(self) -> int:
        """Model input width (active + reactive load per bus)."""
        return 2 * self.n_bus


def _trunk_widths(n_inputs: int, config: MTLConfig) -> List[int]:
    widths = [max(8, int(round(n_inputs * s))) for s in config.shared_layer_scales]
    if config.width_cap is not None:
        widths = [min(w, config.width_cap) for w in widths]
    return widths


def _head(in_dim: int, out_dim: int, config: MTLConfig, positive: bool, rng) -> Sequential:
    hidden = max(config.head_min_width, int(round(in_dim * config.head_width_fraction)))
    layers = [Linear(in_dim, hidden, rng=rng), ReLU(), Linear(hidden, out_dim, rng=rng)]
    if positive:
        layers.append(Sigmoid())
    return Sequential(*layers)


class SmartPGSimMTL(Module):
    """Multitask model with shared trunk, task heads and the physics hierarchy."""

    def __init__(self, dims: TaskDimensions, config: Optional[MTLConfig] = None, seed: Optional[int] = None):
        super().__init__()
        self.config = config or MTLConfig()
        self.config.validate()
        self.dims = dims
        rng = ensure_rng(self.config.seed if seed is None else seed)

        widths = _trunk_widths(dims.n_inputs, self.config)
        self.trunk = mlp([dims.n_inputs, *widths], activation=ReLU, output_activation=ReLU, rng=rng)
        trunk_out = widths[-1]
        n_x = 2 * dims.n_bus + 2 * dims.n_gen

        # Main-task estimators.  Vm/Pg/Qg targets are normalised to [0, 1] so a
        # sigmoid keeps them inside their (bound-induced) box; Va is unbounded.
        self.head_Va = _head(trunk_out, dims.n_bus, self.config, positive=False, rng=rng)
        self.head_Vm = _head(trunk_out, dims.n_bus, self.config, positive=True, rng=rng)
        self.head_Pg = _head(trunk_out, dims.n_gen, self.config, positive=True, rng=rng)
        self.head_Qg = _head(trunk_out, dims.n_gen, self.config, positive=True, rng=rng)
        # Auxiliary estimators with the physics-dependent hierarchy.
        self.head_lam = _head(trunk_out, dims.n_eq, self.config, positive=False, rng=rng)
        self.head_z = _head(trunk_out + n_x, dims.n_ineq, self.config, positive=True, rng=rng)
        self.head_mu = _head(trunk_out + n_x + dims.n_ineq, dims.n_ineq, self.config, positive=True, rng=rng)

    # ------------------------------------------------------------------ forward
    def forward(self, inputs: Tensor, detach_auxiliary: bool = False) -> Dict[str, Tensor]:
        """Predict all seven tasks for a batch of normalised load vectors.

        ``detach_auxiliary`` activates the paper's detach knob: gradients from
        the auxiliary tasks are blocked from reaching the shared trunk and the
        main-task predictions.
        """
        inputs = as_tensor(inputs)
        features = self.trunk(inputs)

        Va = self.head_Va(features)
        Vm = self.head_Vm(features)
        Pg = self.head_Pg(features)
        Qg = self.head_Qg(features)
        x_pred = concatenate([Va, Vm, Pg, Qg], axis=1)

        aux_features = features.detach() if detach_auxiliary else features
        aux_x = x_pred.detach() if detach_auxiliary else x_pred

        lam = self.head_lam(aux_features)
        z = self.head_z(concatenate([aux_features, aux_x], axis=1))
        mu = self.head_mu(concatenate([aux_features, aux_x, z], axis=1))

        return {"Va": Va, "Vm": Vm, "Pg": Pg, "Qg": Qg, "lam": lam, "z": z, "mu": mu}

    # -------------------------------------------------------------- conveniences
    def predict(self, inputs: np.ndarray) -> Dict[str, np.ndarray]:
        """Inference on a NumPy batch; returns NumPy arrays (normalised space)."""
        outputs = self.forward(Tensor(np.atleast_2d(inputs)))
        return {task: out.data.copy() for task, out in outputs.items()}

    def describe(self) -> Dict[str, int]:
        """Parameter counts per component (useful for reports and tests)."""
        return {
            "trunk": self.trunk.n_parameters(),
            "heads": self.n_parameters() - self.trunk.n_parameters(),
            "total": self.n_parameters(),
        }


def dimensions_from_opf(n_bus: int, n_gen: int, n_eq: int, n_ineq: int) -> TaskDimensions:
    """Small helper mirroring the signature used throughout the framework."""
    return TaskDimensions(n_bus=n_bus, n_gen=n_gen, n_eq=n_eq, n_ineq=n_ineq)
