"""Physics-informed loss terms (Section VII of the paper).

All four objective functions are expressed with the autograd tensors of
:mod:`repro.nn`, so their gradients flow back through the MTL model during
training:

* ``f_AC``   — AC nodal power-balance residual (Eqn. 5),
* ``f_ieq``  — exponential penalties guarding the inequality constraints (Eqn. 6),
* ``f_cost`` — consistency between the predicted dispatch cost and the
  ground-truth optimal cost (Eqn. 7),
* ``f_Lag``  — Lagrangian conservation of the equality / slacked inequality
  terms (Eqn. 8).

Predictions handed to these functions are in *physical* units (radians, p.u.
voltages and injections, raw multipliers), shaped ``(batch, dim)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.nn.tensor import Tensor, as_tensor, concatenate
from repro.opf.model import OPFModel


def _clip_exp(values: Tensor, clip: float) -> Tensor:
    """Exponential with an upper clip on the exponent (keeps training stable)."""
    clipped = -((-values).clamp_min(-clip))
    return clipped.exp()


@dataclass
class PhysicsContext:
    """Dense snapshots of the network data needed by the physics losses.

    Everything is pre-converted to dense ``float64`` arrays because the batch
    sizes are small and the autograd engine operates on dense tensors.
    """

    base_mva: float
    n_bus: int
    n_gen: int
    # Bus admittance split into real/imaginary parts.
    Gbus: np.ndarray
    Bbus: np.ndarray
    # Generator connection matrix (nb, ng) with out-of-service columns zeroed.
    Cg: np.ndarray
    # Polynomial cost coefficients, descending powers, one row per generator.
    cost_coeffs: np.ndarray
    # Variable bounds and the MIPS bound-row bookkeeping.
    xmin: np.ndarray
    xmax: np.ndarray
    eq_bound_idx: np.ndarray
    ub_idx: np.ndarray
    lb_idx: np.ndarray
    # Limited-branch data (empty arrays when the case has no flow limits).
    Gf: np.ndarray
    Bf: np.ndarray
    Gt: np.ndarray
    Bt: np.ndarray
    Cf: np.ndarray
    Ct: np.ndarray
    flow_limit_sq: np.ndarray

    @staticmethod
    def from_model(model: OPFModel) -> "PhysicsContext":
        """Build the context from an :class:`~repro.opf.OPFModel`."""
        case = model.case
        adm = model.adm
        on = (case.gen.status > 0).astype(float)
        Cg = adm.Cg.toarray() * on[np.newaxis, :]
        Ybus = adm.Ybus.toarray()
        xmin, xmax = model.bounds()

        lim = model.limited_branches
        if lim.size:
            Yf = adm.Yf[lim].toarray()
            Yt = adm.Yt[lim].toarray()
            Cf = adm.Cf[lim].toarray()
            Ct = adm.Ct[lim].toarray()
        else:
            nb = case.n_bus
            Yf = Yt = np.zeros((0, nb), dtype=complex)
            Cf = Ct = np.zeros((0, nb))

        return PhysicsContext(
            base_mva=case.base_mva,
            n_bus=case.n_bus,
            n_gen=case.n_gen,
            Gbus=Ybus.real.copy(),
            Bbus=Ybus.imag.copy(),
            Cg=Cg,
            cost_coeffs=case.gencost.coeffs.copy(),
            xmin=xmin,
            xmax=xmax,
            eq_bound_idx=np.flatnonzero(
                np.isfinite(xmin) & np.isfinite(xmax) & (np.abs(xmax - xmin) <= 1e-10)
            ),
            ub_idx=np.flatnonzero(
                np.isfinite(xmax) & ~(np.isfinite(xmin) & (np.abs(xmax - xmin) <= 1e-10))
            ),
            lb_idx=np.flatnonzero(
                np.isfinite(xmin) & ~(np.isfinite(xmax) & (np.abs(xmax - xmin) <= 1e-10))
            ),
            Gf=Yf.real.copy(),
            Bf=Yf.imag.copy(),
            Gt=Yt.real.copy(),
            Bt=Yt.imag.copy(),
            Cf=Cf,
            Ct=Ct,
            flow_limit_sq=model.flow_limit_sq.copy(),
        )

    # ------------------------------------------------------------------ helpers
    @property
    def n_limited(self) -> int:
        """Number of flow-limited branches."""
        return int(self.flow_limit_sq.shape[0])


def rectangular_voltage(pred: Dict[str, Tensor]) -> Tuple[Tensor, Tensor]:
    """Real/imaginary voltage components from predicted ``Va`` (rad) and ``Vm`` (p.u.)."""
    Va, Vm = pred["Va"], pred["Vm"]
    return Vm * Va.cos(), Vm * Va.sin()


def power_balance_residual(
    ctx: PhysicsContext,
    pred: Dict[str, Tensor],
    Pd_pu: np.ndarray,
    Qd_pu: np.ndarray,
) -> Tuple[Tensor, Tensor]:
    """Per-bus active/reactive power-balance mismatch of the predicted solution."""
    e, f = rectangular_voltage(pred)
    # I = Ybus V  (batched: rows of e/f are samples).
    Ir = e @ ctx.Gbus.T - f @ ctx.Bbus.T
    Ii = e @ ctx.Bbus.T + f @ ctx.Gbus.T
    Pbus = e * Ir + f * Ii
    Qbus = f * Ir - e * Ii
    Pg_bus = pred["Pg"] @ ctx.Cg.T
    Qg_bus = pred["Qg"] @ ctx.Cg.T
    misP = Pbus + as_tensor(Pd_pu) - Pg_bus
    misQ = Qbus + as_tensor(Qd_pu) - Qg_bus
    return misP, misQ


def branch_flow_squared(ctx: PhysicsContext, pred: Dict[str, Tensor]) -> Optional[Tuple[Tensor, Tensor]]:
    """Squared apparent flows ``(|Sf|², |St|²)`` on limited branches, or ``None``."""
    if ctx.n_limited == 0:
        return None
    e, f = rectangular_voltage(pred)

    def side(G: np.ndarray, B: np.ndarray, C: np.ndarray) -> Tensor:
        Ir = e @ G.T - f @ B.T
        Ii = e @ B.T + f @ G.T
        Vr = e @ C.T
        Vi = f @ C.T
        P = Vr * Ir + Vi * Ii
        Q = Vi * Ir - Vr * Ii
        return P * P + Q * Q

    return side(ctx.Gf, ctx.Bf, ctx.Cf), side(ctx.Gt, ctx.Bt, ctx.Ct)


def stack_primal(pred: Dict[str, Tensor]) -> Tensor:
    """Concatenate the predicted primal components in MIPS variable order."""
    return concatenate([pred["Va"], pred["Vm"], pred["Pg"], pred["Qg"]], axis=1)


def inequality_values(ctx: PhysicsContext, pred: Dict[str, Tensor]) -> Tensor:
    """All inequality constraint values ``h(X)`` in MIPS internal ordering.

    Ordering matches :class:`repro.mips.ConstraintPartition`: branch-flow rows
    (from-end then to-end), then upper-bound rows, then lower-bound rows.
    """
    x = stack_primal(pred)
    pieces = []
    flows = branch_flow_squared(ctx, pred)
    if flows is not None:
        Af, At = flows
        pieces.append(Af - ctx.flow_limit_sq)
        pieces.append(At - ctx.flow_limit_sq)
    if ctx.ub_idx.size:
        pieces.append(x[:, ctx.ub_idx] - ctx.xmax[ctx.ub_idx])
    if ctx.lb_idx.size:
        pieces.append(ctx.xmin[ctx.lb_idx] - x[:, ctx.lb_idx])
    if not pieces:
        raise ValueError("problem has no inequality constraints")
    return concatenate(pieces, axis=1)


def equality_values(
    ctx: PhysicsContext,
    pred: Dict[str, Tensor],
    Pd_pu: np.ndarray,
    Qd_pu: np.ndarray,
) -> Tensor:
    """All equality constraint values ``g(X)`` in MIPS internal ordering."""
    misP, misQ = power_balance_residual(ctx, pred, Pd_pu, Qd_pu)
    pieces = [misP, misQ]
    if ctx.eq_bound_idx.size:
        x = stack_primal(pred)
        pieces.append(x[:, ctx.eq_bound_idx] - ctx.xmin[ctx.eq_bound_idx])
    return concatenate(pieces, axis=1)


def predicted_cost(ctx: PhysicsContext, pred: Dict[str, Tensor]) -> Tensor:
    """Total generation cost ($/h) of the predicted dispatch (per sample)."""
    Pg_mw = pred["Pg"] * ctx.base_mva
    ncost_max = ctx.cost_coeffs.shape[1]
    cost = as_tensor(np.zeros((Pg_mw.shape[0], ctx.n_gen)))
    for k in range(ncost_max):
        cost = cost * Pg_mw + ctx.cost_coeffs[:, k]
    return cost.sum(axis=1)


# ---------------------------------------------------------------------------
# The four physics objective functions
# ---------------------------------------------------------------------------
def f_ac(ctx: PhysicsContext, pred: Dict[str, Tensor], Pd_pu: np.ndarray, Qd_pu: np.ndarray) -> Tensor:
    """Power-balance objective ``f_AC`` (Eqn. 5): mean absolute nodal mismatch."""
    misP, misQ = power_balance_residual(ctx, pred, Pd_pu, Qd_pu)
    return misP.abs().mean() + misQ.abs().mean()


def f_ieq(ctx: PhysicsContext, pred: Dict[str, Tensor], exp_clip: float = 20.0) -> Tensor:
    """Inequality-guarding objective ``f_ieq`` (Eqn. 6).

    Exponential penalties on bound violations of the primal variables and on
    branch-flow overflow; strongly feasible points contribute almost nothing.
    """
    x = stack_primal(pred)
    terms = []
    if ctx.ub_idx.size:
        terms.append(_clip_exp(x[:, ctx.ub_idx] - ctx.xmax[ctx.ub_idx], exp_clip).mean())
    if ctx.lb_idx.size:
        terms.append(_clip_exp(ctx.xmin[ctx.lb_idx] - x[:, ctx.lb_idx], exp_clip).mean())
    flows = branch_flow_squared(ctx, pred)
    if flows is not None:
        Af, At = flows
        terms.append(_clip_exp(Af - ctx.flow_limit_sq, exp_clip).mean())
        terms.append(_clip_exp(At - ctx.flow_limit_sq, exp_clip).mean())
    total = terms[0]
    for term in terms[1:]:
        total = total + term
    return total


def f_cost(ctx: PhysicsContext, pred: Dict[str, Tensor], f0: np.ndarray) -> Tensor:
    """Cost-consistency objective ``f_cost`` (Eqn. 7), relative to the optimum.

    The deviation is normalised by the ground-truth cost so the term has a
    comparable scale across test systems.
    """
    cost = predicted_cost(ctx, pred)
    f0 = np.asarray(f0, dtype=float).reshape(-1)
    return ((cost - f0) / np.maximum(np.abs(f0), 1e-12)).abs().mean()


def f_lag(
    ctx: PhysicsContext,
    pred: Dict[str, Tensor],
    Pd_pu: np.ndarray,
    Qd_pu: np.ndarray,
) -> Tensor:
    """Lagrangian-conservation objective ``f_Lag`` (Eqn. 8)."""
    g = equality_values(ctx, pred, Pd_pu, Qd_pu)
    h = inequality_values(ctx, pred)
    lam, mu, z = pred["lam"], pred["mu"], pred["z"]
    eq_term = (lam * g).sum(axis=1).abs().mean()
    ineq_term = (mu * (h + z)).sum(axis=1).abs().mean()
    return eq_term + ineq_term


def physics_losses(
    ctx: PhysicsContext,
    pred: Dict[str, Tensor],
    Pd_pu: np.ndarray,
    Qd_pu: np.ndarray,
    f0: np.ndarray,
    weights: Dict[str, float],
    exp_clip: float = 20.0,
) -> Dict[str, Tensor]:
    """Evaluate the weighted physics terms; returns each term plus ``"total"``."""
    terms = {
        "f_ac": f_ac(ctx, pred, Pd_pu, Qd_pu) * weights.get("f_ac", 1.0),
        "f_ieq": f_ieq(ctx, pred, exp_clip=exp_clip) * weights.get("f_ieq", 1.0),
        "f_cost": f_cost(ctx, pred, f0) * weights.get("f_cost", 1.0),
        "f_lag": f_lag(ctx, pred, Pd_pu, Qd_pu) * weights.get("f_lag", 1.0),
    }
    total = terms["f_ac"] + terms["f_ieq"] + terms["f_cost"] + terms["f_lag"]
    terms["total"] = total
    return terms
