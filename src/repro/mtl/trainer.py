"""Training loop for the MTL model (and the separate-networks baseline).

The total loss follows Eqn. 9 of the paper::

    L_total = L_supervised + L_AC + L_ieq + L_lag + L_f(X)

where ``L_supervised`` is the weighted Charbonnier loss of Eqn. 4 on the
normalised targets and the other four terms are the physics-informed
objectives of Section VII evaluated on the *denormalised* (physical)
predictions.  The auxiliary-task ``detach()`` knob is applied periodically, as
described in Section VI-B.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.data.dataset import OPFDataset, TASK_NAMES
from repro.mtl.config import MTLConfig
from repro.mtl.normalization import DatasetNormalizer
from repro.mtl.physics import PhysicsContext, physics_losses
from repro.nn.losses import charbonnier
from repro.nn.modules import Module
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.schedulers import Scheduler
from repro.nn.serialization import load_bundle, save_bundle
from repro.nn.tensor import Tensor
from repro.opf.model import OPFModel
from repro.opf.warmstart import WarmStart
from repro.utils.logging import get_logger

LOGGER = get_logger("mtl")

#: Format version of trainer checkpoints (bump on incompatible layout change).
CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class EpochStats:
    """Loss breakdown of one training epoch."""

    epoch: int
    total_loss: float
    supervised_loss: float
    physics_loss: float
    physics_terms: Dict[str, float]
    detached: bool
    seconds: float


@dataclass
class TrainingHistory:
    """Full record of one training run."""

    epochs: List[EpochStats] = field(default_factory=list)
    validation_errors: List[Dict[str, float]] = field(default_factory=list)
    train_seconds: float = 0.0

    @property
    def final_loss(self) -> float:
        """Total loss of the last epoch."""
        return self.epochs[-1].total_loss if self.epochs else float("nan")

    def losses(self) -> np.ndarray:
        """Per-epoch total losses."""
        return np.array([e.total_loss for e in self.epochs])


class MTLTrainer:
    """Trains a prediction network on one system's :class:`OPFDataset`."""

    def __init__(
        self,
        network: Module,
        dataset: OPFDataset,
        opf_model: OPFModel,
        config: Optional[MTLConfig] = None,
        normalizer: Optional[DatasetNormalizer] = None,
        use_physics: Optional[bool] = None,
    ):
        self.network = network
        self.dataset = dataset
        self.opf_model = opf_model
        self.config = config or getattr(network, "config", MTLConfig())
        self.config.validate()
        self.use_physics = self.config.use_physics if use_physics is None else bool(use_physics)
        self.normalizer = normalizer or DatasetNormalizer.fit(dataset.inputs, dataset.targets)
        self.physics_ctx = PhysicsContext.from_model(opf_model) if self.use_physics else None
        self.optimizer = Adam(
            network.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        #: Optional learning-rate scheduler, stepped once per epoch.  Attach
        #: after construction (it needs ``self.optimizer``)::
        #:
        #:     trainer.scheduler = StepLR(trainer.optimizer, step_size=10)
        self.scheduler: Optional[Scheduler] = None
        self._norm_inputs = np.asarray(self.normalizer.normalize_inputs(dataset.inputs), dtype=float)
        self._norm_targets = {
            task: np.asarray(values, dtype=float)
            for task, values in self.normalizer.normalize_targets(dataset.targets).items()
        }

    # ------------------------------------------------------------------ training
    def _supervised_loss(self, outputs: Dict[str, Tensor], index: np.ndarray) -> Tensor:
        loss: Optional[Tensor] = None
        for task in TASK_NAMES:
            target = Tensor(self._norm_targets[task][index])
            term = charbonnier(
                outputs[task],
                target,
                epsilon=self.config.charbonnier_eps,
                weight=self.config.task_weights[task],
            )
            loss = term if loss is None else loss + term
        assert loss is not None
        return loss

    def _physics_loss(self, outputs: Dict[str, Tensor], index: np.ndarray) -> Dict[str, Tensor]:
        assert self.physics_ctx is not None
        physical = {
            task: self.normalizer.denormalize_task(task, outputs[task]) for task in TASK_NAMES
        }
        nb = self.opf_model.case.n_bus
        Pd_pu = self.dataset.inputs[index, :nb]
        Qd_pu = self.dataset.inputs[index, nb:]
        f0 = self.dataset.objectives[index]
        weights = {
            "f_ac": self.config.weight_ac,
            "f_ieq": self.config.weight_ieq,
            "f_cost": self.config.weight_cost,
            "f_lag": self.config.weight_lag,
        }
        return physics_losses(
            self.physics_ctx,
            physical,
            Pd_pu,
            Qd_pu,
            f0,
            weights,
            exp_clip=self.config.ieq_exp_clip,
        )

    def train(
        self,
        validation: Optional[OPFDataset] = None,
        checkpoint_path: Optional[Union[str, Path]] = None,
        checkpoint_every: int = 0,
        resume_from: Optional[Union[str, Path]] = None,
        until_epoch: Optional[int] = None,
    ) -> TrainingHistory:
        """Run the configured number of epochs; returns the loss history.

        ``checkpoint_path`` + ``checkpoint_every`` save a resumable checkpoint
        after every ``checkpoint_every``-th epoch (crash-safe: the write is an
        atomic replace).  ``resume_from`` restores such a checkpoint — network
        weights, Adam moments and step counter, scheduler position and the
        batch-shuffling RNG state — so a killed run, resumed, replays the
        remaining epochs *bitwise identically* to an uninterrupted run (loss
        fields; wall-clock ``seconds`` naturally differ).  ``until_epoch``
        stops early after that epoch (inclusive), which is how tests simulate
        a kill at a deterministic point.
        """
        start = time.perf_counter()
        if resume_from is not None:
            start_epoch, rng, history = self._restore_checkpoint(resume_from)
        else:
            start_epoch = 0
            rng = np.random.default_rng(self.config.seed)
            history = TrainingHistory()
        end_epoch = self.config.epochs if until_epoch is None else min(until_epoch, self.config.epochs)

        for epoch in range(start_epoch + 1, end_epoch + 1):
            epoch_start = time.perf_counter()
            detached = self.config.detach_period > 0 and epoch % self.config.detach_period == 0
            totals = {"total": 0.0, "supervised": 0.0, "physics": 0.0}
            physics_terms_sum: Dict[str, float] = {}
            n_batches = 0

            for index in self.dataset.batches(self.config.batch_size, seed=rng.integers(2**31)):
                self.optimizer.zero_grad()
                outputs = self.network(Tensor(self._norm_inputs[index]), detach_auxiliary=detached)
                supervised = self._supervised_loss(outputs, index)
                loss = supervised
                physics_total = 0.0
                if self.use_physics:
                    terms = self._physics_loss(outputs, index)
                    loss = loss + terms["total"]
                    physics_total = terms["total"].item()
                    for name, value in terms.items():
                        if name != "total":
                            physics_terms_sum[name] = physics_terms_sum.get(name, 0.0) + value.item()
                loss.backward()
                if self.config.grad_clip:
                    clip_grad_norm(self.network.parameters(), self.config.grad_clip)
                self.optimizer.step()

                totals["total"] += loss.item()
                totals["supervised"] += supervised.item()
                totals["physics"] += physics_total
                n_batches += 1

            stats = EpochStats(
                epoch=epoch,
                total_loss=totals["total"] / n_batches,
                supervised_loss=totals["supervised"] / n_batches,
                physics_loss=totals["physics"] / n_batches,
                physics_terms={k: v / n_batches for k, v in physics_terms_sum.items()},
                detached=detached,
                seconds=time.perf_counter() - epoch_start,
            )
            history.epochs.append(stats)
            if validation is not None:
                history.validation_errors.append(self.evaluate(validation))
            if self.scheduler is not None:
                self.scheduler.step()
            if checkpoint_path is not None and checkpoint_every > 0 and epoch % checkpoint_every == 0:
                self.save_checkpoint(checkpoint_path, epoch, rng, history)
            LOGGER.debug(
                "epoch %d: total=%.4e supervised=%.4e physics=%.4e",
                epoch,
                stats.total_loss,
                stats.supervised_loss,
                stats.physics_loss,
            )

        history.train_seconds = time.perf_counter() - start
        return history

    # -------------------------------------------------------------- checkpoints
    def save_checkpoint(
        self,
        path: Union[str, Path],
        epoch: int,
        rng: np.random.Generator,
        history: TrainingHistory,
    ) -> Path:
        """Persist everything needed to resume training after ``epoch``.

        The checkpoint is a checksummed bundle (see
        :func:`repro.nn.serialization.save_bundle`) holding the network
        parameters, the Adam moment estimates and step counter, the scheduler
        position, the batch-shuffling RNG state *as of the end of the epoch*
        and the loss history so far.  Because each epoch draws exactly one
        batch seed from ``rng``, restoring this state replays the remaining
        epochs bitwise identically.
        """
        opt_state = self.optimizer.state_dict()
        arrays: Dict[str, np.ndarray] = {
            f"param/{name}": value for name, value in self.network.state_dict().items()
        }
        for i, m in enumerate(opt_state["m"]):
            arrays[f"opt/m/{i}"] = m
        for i, v in enumerate(opt_state["v"]):
            arrays[f"opt/v/{i}"] = v
        meta = {
            "checkpoint_version": CHECKPOINT_VERSION,
            "epoch": int(epoch),
            "optimizer": {"t": int(opt_state["t"]), "lr": float(opt_state["lr"])},
            "scheduler": None if self.scheduler is None else self.scheduler.state_dict(),
            # PCG64 state is a dict of (big) ints — JSON round-trips it exactly.
            "rng_state": rng.bit_generator.state,
            "history": {
                "epochs": [asdict(e) for e in history.epochs],
                "validation_errors": history.validation_errors,
                "train_seconds": history.train_seconds,
            },
        }
        return save_bundle(path, arrays, meta)

    def _restore_checkpoint(
        self, path: Union[str, Path]
    ) -> tuple[int, np.random.Generator, TrainingHistory]:
        """Load a checkpoint into this trainer; returns ``(epoch, rng, history)``."""
        arrays, meta = load_bundle(path)
        version = meta.get("checkpoint_version")
        if version != CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint {path} has version {version!r}; expected {CHECKPOINT_VERSION}"
            )
        prefix = "param/"
        self.network.load_state_dict(
            {key[len(prefix):]: value for key, value in arrays.items() if key.startswith(prefix)}
        )
        n_params = len(self.optimizer.params)
        self.optimizer.load_state_dict(
            {
                "lr": meta["optimizer"]["lr"],
                "t": meta["optimizer"]["t"],
                "m": [arrays[f"opt/m/{i}"] for i in range(n_params)],
                "v": [arrays[f"opt/v/{i}"] for i in range(n_params)],
            }
        )
        if self.scheduler is not None and meta.get("scheduler") is not None:
            self.scheduler.load_state_dict(meta["scheduler"])
        rng = np.random.default_rng(self.config.seed)
        rng.bit_generator.state = meta["rng_state"]
        history = TrainingHistory(
            epochs=[EpochStats(**stats) for stats in meta["history"]["epochs"]],
            validation_errors=list(meta["history"]["validation_errors"]),
            train_seconds=float(meta["history"]["train_seconds"]),
        )
        return int(meta["epoch"]), rng, history

    # ----------------------------------------------------------------- inference
    def predict_physical(self, inputs_pu: np.ndarray) -> Dict[str, np.ndarray]:
        """Predict all tasks for raw p.u. load vectors; outputs in physical units."""
        return predict_physical(self.network, self.normalizer, inputs_pu)

    def warm_start_for(self, input_pu: np.ndarray) -> WarmStart:
        """Build a solver warm start from the prediction for one load vector."""
        pred = self.predict_physical(np.atleast_2d(input_pu))
        return warm_start_from_prediction({k: v[0] for k, v in pred.items()}, self.opf_model)

    def warm_starts_for(self, inputs_pu: np.ndarray) -> List[WarmStart]:
        """Build warm starts for a whole batch of load vectors at once.

        One forward pass covers all rows, which is what the serving engine
        amortises over a fleet of solver workers — N per-row
        :meth:`warm_start_for` calls pay the full Python dispatch overhead N
        times for the same arithmetic.
        """
        pred = self.predict_physical(np.atleast_2d(inputs_pu))
        return warm_starts_from_predictions(pred, self.opf_model)

    # ---------------------------------------------------------------- evaluation
    def evaluate(self, dataset: OPFDataset) -> Dict[str, float]:
        """Mean absolute error per task in physical units plus relative error."""
        pred = self.predict_physical(dataset.inputs)
        metrics: Dict[str, float] = {}
        for task in TASK_NAMES:
            target = dataset.targets[task]
            err = np.abs(pred[task] - target)
            metrics[f"mae_{task}"] = float(err.mean())
            denom = np.maximum(np.abs(target), 1e-6)
            metrics[f"rel_{task}"] = float((err / denom).mean())
        return metrics


#: Fixed row count for every inference forward pass.  BLAS selects its gemm
#: kernel and blocking by the batch dimension, so the same input row can come
#: out with different last bits inside a 2-row and a 6-row matmul (and a
#: single-row matmul takes the gemv path entirely).  Pinning every forward
#: pass to exactly this many rows makes a prediction a function of row
#: content alone — a row's position inside a fixed-shape gemm does not change
#: its bits — which is the invariant the async serving batcher relies on:
#: results must not depend on the flush width a request happened to ride in.
INFERENCE_BLOCK_ROWS = 16


def _predict_block(
    network: Module, normalizer: DatasetNormalizer, inputs_pu: np.ndarray
) -> Dict[str, np.ndarray]:
    """One normalise → forward → denormalise pass over a prepared block."""
    norm_in = np.asarray(normalizer.normalize_inputs(inputs_pu), dtype=float)
    outputs = network(Tensor(norm_in))
    return {
        task: np.asarray(normalizer.denormalize_task(task, out.data))
        for task, out in outputs.items()
    }


def predict_physical(
    network: Module, normalizer: DatasetNormalizer, inputs_pu: np.ndarray
) -> Dict[str, np.ndarray]:
    """Batched inference helper shared by the trainer and the serving engine.

    Normalises the raw p.u. load vectors, runs the forward pass and maps every
    task back to physical units.  Inputs are processed in blocks of exactly
    ``INFERENCE_BLOCK_ROWS`` rows (the tail block padded by repeating its last
    row), so every matmul runs on one canonical gemm shape and row ``i``'s
    prediction is bitwise identical whether it was served alone, in a pair, or
    in the middle of a wide coalesced batch.
    """
    inputs_pu = np.atleast_2d(np.asarray(inputs_pu, dtype=float))
    n_rows = inputs_pu.shape[0]
    block = INFERENCE_BLOCK_ROWS
    if n_rows == 0 or n_rows == block:
        return _predict_block(network, normalizer, inputs_pu)
    chunks: List[Dict[str, np.ndarray]] = []
    for start in range(0, n_rows, block):
        rows = inputs_pu[start : start + block]
        pad = block - rows.shape[0]
        if pad:
            rows = np.vstack([rows] + [rows[-1:]] * pad)
        predicted = _predict_block(network, normalizer, rows)
        if pad:
            predicted = {key: value[: block - pad] for key, value in predicted.items()}
        chunks.append(predicted)
    if len(chunks) == 1:
        return chunks[0]
    return {
        key: np.concatenate([chunk[key] for chunk in chunks], axis=0)
        for key in chunks[0]
    }


def warm_starts_from_predictions(
    predictions: Dict[str, np.ndarray], opf_model: OPFModel
) -> List[WarmStart]:
    """Turn batched per-task predictions into one :class:`WarmStart` per row."""
    n = next(iter(predictions.values())).shape[0]
    return [
        warm_start_from_prediction({k: v[i] for k, v in predictions.items()}, opf_model)
        for i in range(n)
    ]


def warm_start_from_prediction(prediction: Dict[str, np.ndarray], opf_model: OPFModel) -> WarmStart:
    """Assemble a :class:`WarmStart` from per-task physical predictions.

    ``µ`` and ``Z`` are clipped to be strictly positive so the interior-point
    iterates stay inside the cone.
    """
    x = opf_model.idx.join(
        np.asarray(prediction["Va"], dtype=float),
        np.asarray(prediction["Vm"], dtype=float),
        np.asarray(prediction["Pg"], dtype=float),
        np.asarray(prediction["Qg"], dtype=float),
    )
    warm = WarmStart(
        x=x,
        lam=np.asarray(prediction["lam"], dtype=float),
        mu=np.asarray(prediction["mu"], dtype=float),
        z=np.asarray(prediction["z"], dtype=float),
    )
    return warm.clipped_duals()
