"""Multitask-learning model, physics-informed losses and training."""

from repro.mtl.config import MTLConfig, fast_config
from repro.mtl.model import (
    AUXILIARY_TASKS,
    MAIN_TASKS,
    SmartPGSimMTL,
    TaskDimensions,
    dimensions_from_opf,
)
from repro.mtl.normalization import DatasetNormalizer, MinMaxScaler
from repro.mtl.physics import (
    PhysicsContext,
    f_ac,
    f_cost,
    f_ieq,
    f_lag,
    physics_losses,
)
from repro.mtl.separate import SeparateTaskNetworks
from repro.mtl.trainer import (
    EpochStats,
    MTLTrainer,
    TrainingHistory,
    warm_start_from_prediction,
    warm_starts_from_predictions,
)

__all__ = [
    "MTLConfig",
    "fast_config",
    "SmartPGSimMTL",
    "SeparateTaskNetworks",
    "TaskDimensions",
    "dimensions_from_opf",
    "MAIN_TASKS",
    "AUXILIARY_TASKS",
    "DatasetNormalizer",
    "MinMaxScaler",
    "PhysicsContext",
    "f_ac",
    "f_ieq",
    "f_cost",
    "f_lag",
    "physics_losses",
    "MTLTrainer",
    "TrainingHistory",
    "EpochStats",
    "warm_start_from_prediction",
    "warm_starts_from_predictions",
]
