"""Baseline: independent per-task networks without information sharing.

Section VIII-D of the paper compares the MTL model against "multiple separate
NNs" with the same number of layers and neurons but no parameter or loss
sharing.  :class:`SeparateTaskNetworks` implements that baseline with the same
forward interface as :class:`~repro.mtl.model.SmartPGSimMTL`, so the trainer
and the evaluation harness can treat both interchangeably.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.mtl.config import MTLConfig
from repro.mtl.model import TaskDimensions, _head, _trunk_widths
from repro.nn.modules import Module, ReLU, mlp
from repro.nn.tensor import Tensor, as_tensor
from repro.utils.rng import ensure_rng


class SeparateTaskNetworks(Module):
    """Seven disjoint networks, one per task (no shared layers, no hierarchy)."""

    def __init__(self, dims: TaskDimensions, config: Optional[MTLConfig] = None, seed: Optional[int] = None):
        super().__init__()
        self.config = config or MTLConfig()
        self.config.validate()
        self.dims = dims
        rng = ensure_rng(self.config.seed if seed is None else seed)

        widths = _trunk_widths(dims.n_inputs, self.config)
        positive = {"Va": False, "Vm": True, "Pg": True, "Qg": True, "lam": False, "z": True, "mu": True}
        self.task_order = tuple(dims.as_dict().keys())
        for task, out_dim in dims.as_dict().items():
            trunk = mlp([dims.n_inputs, *widths], activation=ReLU, output_activation=ReLU, rng=rng)
            head = _head(widths[-1], out_dim, self.config, positive=positive[task], rng=rng)
            setattr(self, f"trunk_{task}", trunk)
            setattr(self, f"head_{task}", head)

    def forward(self, inputs: Tensor, detach_auxiliary: bool = False) -> Dict[str, Tensor]:
        """Predict every task from its own private network.

        ``detach_auxiliary`` is accepted for interface compatibility but has no
        effect: with disjoint networks there is nothing to protect.
        """
        inputs = as_tensor(inputs)
        outputs: Dict[str, Tensor] = {}
        for task in self.task_order:
            trunk = getattr(self, f"trunk_{task}")
            head = getattr(self, f"head_{task}")
            outputs[task] = head(trunk(inputs))
        return outputs

    def predict(self, inputs: np.ndarray) -> Dict[str, np.ndarray]:
        """Inference on a NumPy batch; returns NumPy arrays (normalised space)."""
        outputs = self.forward(Tensor(np.atleast_2d(inputs)))
        return {task: out.data.copy() for task, out in outputs.items()}
