"""A small reverse-mode automatic-differentiation engine on NumPy arrays.

The MTL model of the paper is a stack of fully-connected layers whose training
loss mixes supervised terms with differentiable physics terms (power-balance
mismatch, exponential inequality penalties, Lagrangian conservation).  Those
composite losses are much easier to express with a general autograd engine
than with hand-derived backpropagation, so this module provides one:
:class:`Tensor` wraps a NumPy array, records the operations applied to it and
computes gradients with a reverse topological sweep in :meth:`Tensor.backward`.

The operation set is intentionally small but complete for the needs of the
library: broadcast-aware arithmetic, matrix multiplication, reductions,
element-wise nonlinearities (including the trigonometric functions the AC
power-balance loss requires), indexing and concatenation.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[float, int, np.ndarray, "Tensor", Sequence[float]]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing over broadcast axes."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were size-1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed array with reverse-mode automatic differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "op")
    __array_priority__ = 1000  # make NumPy defer to our reflected operators

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _op: str = "",
    ):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=float)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[], None] = lambda: None
        self._parents = _parents
        self.op = _op

    # ------------------------------------------------------------------ misc
    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Number of elements."""
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}, op={self.op!r})"

    def numpy(self) -> np.ndarray:
        """The underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        """The scalar value of a 0-d / single-element tensor."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """A tensor sharing the same data but cut out of the autograd graph.

        This is the ``detach()`` operation the paper applies to the auxiliary
        tasks to stop their gradients from reaching the shared layers.
        """
        return Tensor(self.data, requires_grad=False)

    # Pickling drops the autograd graph (backward closures are not picklable
    # and a deserialised tensor is always a leaf).  This keeps trained models
    # transferable to worker processes in the parallel scenario runner.
    def __getstate__(self):
        return {"data": self.data, "grad": self.grad, "requires_grad": self.requires_grad}

    def __setstate__(self, state):
        self.data = state["data"]
        self.grad = state["grad"]
        self.requires_grad = state["requires_grad"]
        self._backward = lambda: None
        self._parents = ()
        self.op = ""

    def zero_grad(self) -> None:
        """Clear any accumulated gradient."""
        self.grad = None

    # ----------------------------------------------------------- graph plumbing
    @staticmethod
    def _lift(value: ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=float), self.data.shape)
        self.grad = grad if self.grad is None else self.grad + grad

    def _make(self, data: np.ndarray, parents: Tuple["Tensor", ...], op: str) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        return Tensor(data, requires_grad=requires, _parents=parents, _op=op)

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        ``grad`` defaults to 1 for scalar tensors (the usual loss case).
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without an explicit gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        topo: List[Tensor] = []
        visited = set()

        def visit(node: Tensor) -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            for parent in node._parents:
                visit(parent)
            topo.append(node)

        visit(self)
        self._accumulate(np.asarray(grad, dtype=float)) if self.requires_grad else None
        if self.grad is None:
            self.grad = np.asarray(grad, dtype=float)
        for node in reversed(topo):
            if node.grad is not None:
                node._backward()

    # ------------------------------------------------------------- arithmetic
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        out = self._make(self.data + other.data, (self, other), "add")

        def backward() -> None:
            self._accumulate(out.grad)
            other._accumulate(out.grad)

        out._backward = backward
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = self._make(-self.data, (self,), "neg")

        def backward() -> None:
            self._accumulate(-out.grad)

        out._backward = backward
        return out

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        out = self._make(self.data * other.data, (self, other), "mul")

        def backward() -> None:
            self._accumulate(out.grad * other.data)
            other._accumulate(out.grad * self.data)

        out._backward = backward
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        out = self._make(self.data / other.data, (self, other), "div")

        def backward() -> None:
            self._accumulate(out.grad / other.data)
            other._accumulate(-out.grad * self.data / (other.data ** 2))

        out._backward = backward
        return out

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._lift(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        out = self._make(self.data ** exponent, (self,), "pow")

        def backward() -> None:
            self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

        out._backward = backward
        return out

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        out = self._make(self.data @ other.data, (self, other), "matmul")

        def backward() -> None:
            grad = out.grad
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:  # inner product
                self._accumulate(grad * b)
                other._accumulate(grad * a)
            elif a.ndim == 1:  # (k,) @ (k, n)
                self._accumulate(grad @ b.T)
                other._accumulate(np.outer(a, grad))
            elif b.ndim == 1:  # (m, k) @ (k,)
                self._accumulate(np.outer(grad, b))
                other._accumulate(a.T @ grad)
            else:
                self._accumulate(grad @ b.T)
                other._accumulate(a.T @ grad)

        out._backward = backward
        return out

    def __rmatmul__(self, other: ArrayLike) -> "Tensor":
        return self._lift(other) @ self

    # -------------------------------------------------------------- reductions
    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        """Sum of elements (optionally along ``axis``)."""
        out = self._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), "sum")

        def backward() -> None:
            grad = out.grad
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(grad, self.data.shape))

        out._backward = backward
        return out

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean of elements (optionally along ``axis``)."""
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    # ------------------------------------------------------------ elementwise
    def _unary(self, value: np.ndarray, local_grad: np.ndarray, op: str) -> "Tensor":
        out = self._make(value, (self,), op)

        def backward() -> None:
            self._accumulate(out.grad * local_grad)

        out._backward = backward
        return out

    def exp(self) -> "Tensor":
        """Element-wise exponential."""
        value = np.exp(self.data)
        return self._unary(value, value, "exp")

    def log(self) -> "Tensor":
        """Element-wise natural logarithm."""
        return self._unary(np.log(self.data), 1.0 / self.data, "log")

    def sqrt(self) -> "Tensor":
        """Element-wise square root."""
        value = np.sqrt(self.data)
        return self._unary(value, 0.5 / value, "sqrt")

    def abs(self) -> "Tensor":
        """Element-wise absolute value (subgradient 0 at the kink)."""
        return self._unary(np.abs(self.data), np.sign(self.data), "abs")

    def sin(self) -> "Tensor":
        """Element-wise sine."""
        return self._unary(np.sin(self.data), np.cos(self.data), "sin")

    def cos(self) -> "Tensor":
        """Element-wise cosine."""
        return self._unary(np.cos(self.data), -np.sin(self.data), "cos")

    def tanh(self) -> "Tensor":
        """Element-wise hyperbolic tangent."""
        value = np.tanh(self.data)
        return self._unary(value, 1.0 - value ** 2, "tanh")

    def sigmoid(self) -> "Tensor":
        """Element-wise logistic sigmoid (numerically stabilised)."""
        value = np.where(
            self.data >= 0,
            1.0 / (1.0 + np.exp(-np.clip(self.data, -60, 60))),
            np.exp(np.clip(self.data, -60, 60)) / (1.0 + np.exp(np.clip(self.data, -60, 60))),
        )
        return self._unary(value, value * (1.0 - value), "sigmoid")

    def relu(self) -> "Tensor":
        """Element-wise rectified linear unit."""
        mask = (self.data > 0).astype(float)
        return self._unary(self.data * mask, mask, "relu")

    def softplus(self) -> "Tensor":
        """Element-wise softplus ``log(1 + exp(x))`` (stable for large |x|)."""
        value = np.logaddexp(0.0, self.data)
        grad = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60, 60)))
        return self._unary(value, grad, "softplus")

    def clamp_min(self, minimum: float) -> "Tensor":
        """Element-wise lower clipping (gradient passes only where unclipped)."""
        mask = (self.data > minimum).astype(float)
        value = np.maximum(self.data, minimum)
        return self._unary(value, mask, "clamp_min")

    # --------------------------------------------------------------- reshaping
    def reshape(self, *shape: int) -> "Tensor":
        """Return a reshaped view of the tensor."""
        out = self._make(self.data.reshape(*shape), (self,), "reshape")

        def backward() -> None:
            self._accumulate(out.grad.reshape(self.data.shape))

        out._backward = backward
        return out

    @property
    def T(self) -> "Tensor":
        """Matrix transpose."""
        out = self._make(self.data.T, (self,), "transpose")

        def backward() -> None:
            self._accumulate(out.grad.T)

        out._backward = backward
        return out

    def __getitem__(self, index) -> "Tensor":
        out = self._make(self.data[index], (self,), "getitem")

        def backward() -> None:
            grad = np.zeros_like(self.data)
            np.add.at(grad, index, out.grad)
            self._accumulate(grad)

        out._backward = backward
        return out


def concatenate(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing back to each input."""
    tensors = [Tensor._lift(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    out = Tensor(
        data,
        requires_grad=any(t.requires_grad for t in tensors),
        _parents=tuple(tensors),
        _op="concat",
    )
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward() -> None:
        grad = out.grad
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis if axis >= 0 else grad.ndim + axis] = slice(start, stop)
            t._accumulate(grad[tuple(index)])

    out._backward = backward
    return out


def stack_scalars(values: Iterable[Tensor]) -> Tensor:
    """Stack scalar tensors into a 1-D tensor (used to aggregate loss terms)."""
    values = list(values)
    return concatenate([v.reshape(1) for v in values], axis=0)


def as_tensor(value: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Convert ``value`` to a :class:`Tensor` (no copy if already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)
