"""Saving and loading model parameters (NumPy ``.npz`` format).

Besides bare state dicts this module offers a small *bundle* format — arrays
plus one JSON metadata blob in a single ``.npz`` — which the engine artifact
layer uses to persist a model together with its normalizer statistics,
configuration and case fingerprint.

Bundles carry a SHA-256 content checksum (over every array's name, dtype,
shape and bytes plus the metadata blob).  :func:`load_bundle` verifies it and
raises :class:`BundleIntegrityError` on mismatch — and translates the zip- or
decompression-level errors NumPy raises on a corrupted archive into the same
type — so callers get one well-typed signal for "the file is damaged" as
opposed to "the file is a different kind of thing".
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
import zlib
from pathlib import Path
from typing import Dict, Tuple, Union

import numpy as np

from repro.nn.modules import Module

#: Reserved key carrying the JSON metadata blob inside a bundle.
META_KEY = "__meta__"

#: Reserved key carrying the bundle's SHA-256 content checksum.
CHECKSUM_KEY = "__checksum__"


class BundleIntegrityError(ValueError):
    """The bundle file is corrupt (bad archive, or checksum mismatch)."""


def _bundle_digest(arrays: Dict[str, np.ndarray], meta_json: str) -> str:
    """SHA-256 over the bundle's logical content (order-independent)."""
    digest = hashlib.sha256()
    for key in sorted(arrays):
        arr = np.ascontiguousarray(arrays[key])
        digest.update(key.encode())
        digest.update(str(arr.dtype).encode())
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())
    digest.update(meta_json.encode())
    return digest.hexdigest()


def _atomic_savez(path: Path, payload: Dict[str, np.ndarray]) -> Path:
    """Crash-safe ``np.savez``: write a temp file, then ``os.replace`` it.

    The archive is written to a temporary sibling *in the destination
    directory* (so the final rename never crosses a filesystem) and renamed
    into place only once it is complete.  A process killed mid-save can leave
    a stale ``*.tmp.<pid>`` sibling behind, but never a truncated bundle at
    the published path — the previous file there stays intact, or the path
    simply does not exist yet.
    """
    final = path if path.suffix == ".npz" else Path(str(path) + ".npz")
    final.parent.mkdir(parents=True, exist_ok=True)
    tmp = final.parent / f"{final.name}.tmp.{os.getpid()}"
    try:
        # Hand np.savez an open file object: given a bare path it would
        # append its own .npz suffix and publish the temp name we chose.
        with open(tmp, "wb") as fh:
            np.savez(fh, **payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)
    finally:
        if tmp.exists():
            tmp.unlink()
    return final


def save_state_dict(state: Dict[str, np.ndarray], path: Union[str, Path]) -> Path:
    """Write a state dict to ``path`` (``.npz``).  Returns the resolved path.

    The write is crash-safe: see :func:`_atomic_savez`.
    """
    # Dotted parameter names are legal npz keys as-is.
    return _atomic_savez(Path(path), dict(state))


def load_state_dict(path: Union[str, Path]) -> Dict[str, np.ndarray]:
    """Read a state dict previously written by :func:`save_state_dict`."""
    with np.load(Path(path), allow_pickle=False) as data:
        return {key: data[key].copy() for key in data.files}


def save_module(module: Module, path: Union[str, Path]) -> Path:
    """Persist a module's parameters."""
    return save_state_dict(module.state_dict(), path)


def load_module(module: Module, path: Union[str, Path]) -> Module:
    """Load parameters into ``module`` (shapes must match) and return it."""
    module.load_state_dict(load_state_dict(path))
    return module


def save_bundle(
    path: Union[str, Path], arrays: Dict[str, np.ndarray], meta: Dict[str, object]
) -> Path:
    """Write arrays plus a JSON metadata blob to one ``.npz`` file.

    ``meta`` must be JSON-serialisable; it is stored under :data:`META_KEY`,
    and a SHA-256 content checksum is stored under :data:`CHECKSUM_KEY`.
    Returns the path NumPy actually wrote (an ``.npz`` suffix is appended when
    missing).

    The write is crash-safe (:func:`_atomic_savez`): the bundle lands at the
    published path only as one complete ``os.replace``, so a process killed
    mid-save leaves any previous artifact at that path intact — it can never
    publish a truncated archive that would later raise
    :class:`BundleIntegrityError`.
    """
    for reserved in (META_KEY, CHECKSUM_KEY):
        if reserved in arrays:
            raise ValueError(f"array key {reserved!r} is reserved")
    meta_json = json.dumps(meta)
    payload = dict(arrays)
    payload[META_KEY] = np.array(meta_json)
    payload[CHECKSUM_KEY] = np.array(_bundle_digest(arrays, meta_json))
    return _atomic_savez(Path(path), payload)


def load_bundle(path: Union[str, Path]) -> Tuple[Dict[str, np.ndarray], Dict[str, object]]:
    """Read a bundle written by :func:`save_bundle`; returns ``(arrays, meta)``.

    Raises :class:`BundleIntegrityError` when the archive is damaged (NumPy's
    zip/zlib errors are translated) or the stored content checksum does not
    match the data actually read.  Bundles written before checksums existed
    (no :data:`CHECKSUM_KEY` entry) load without verification.
    """
    try:
        with np.load(Path(path), allow_pickle=False) as data:
            if META_KEY not in data.files:
                raise ValueError(f"{path} is not a bundle (missing {META_KEY!r})")
            meta_json = str(data[META_KEY])
            stored_checksum = (
                str(data[CHECKSUM_KEY]) if CHECKSUM_KEY in data.files else None
            )
            arrays = {
                key: data[key].copy()
                for key in data.files
                if key not in (META_KEY, CHECKSUM_KEY)
            }
    except (zipfile.BadZipFile, zlib.error, EOFError) as exc:
        raise BundleIntegrityError(f"bundle {path} is corrupt: {exc}") from exc
    if stored_checksum is not None:
        actual = _bundle_digest(arrays, meta_json)
        if actual != stored_checksum:
            raise BundleIntegrityError(
                f"bundle {path} failed its content checksum "
                f"(stored {stored_checksum[:12]}…, recomputed {actual[:12]}…)"
            )
    return arrays, json.loads(meta_json)
