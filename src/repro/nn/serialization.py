"""Saving and loading model parameters (NumPy ``.npz`` format)."""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.nn.modules import Module


def save_state_dict(state: Dict[str, np.ndarray], path: Union[str, Path]) -> Path:
    """Write a state dict to ``path`` (``.npz``).  Returns the resolved path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # Dotted parameter names are legal npz keys as-is.
    np.savez(path, **state)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_state_dict(path: Union[str, Path]) -> Dict[str, np.ndarray]:
    """Read a state dict previously written by :func:`save_state_dict`."""
    with np.load(Path(path), allow_pickle=False) as data:
        return {key: data[key].copy() for key in data.files}


def save_module(module: Module, path: Union[str, Path]) -> Path:
    """Persist a module's parameters."""
    return save_state_dict(module.state_dict(), path)


def load_module(module: Module, path: Union[str, Path]) -> Module:
    """Load parameters into ``module`` (shapes must match) and return it."""
    module.load_state_dict(load_state_dict(path))
    return module
