"""Saving and loading model parameters (NumPy ``.npz`` format).

Besides bare state dicts this module offers a small *bundle* format — arrays
plus one JSON metadata blob in a single ``.npz`` — which the engine artifact
layer uses to persist a model together with its normalizer statistics,
configuration and case fingerprint.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Tuple, Union

import numpy as np

from repro.nn.modules import Module

#: Reserved key carrying the JSON metadata blob inside a bundle.
META_KEY = "__meta__"


def save_state_dict(state: Dict[str, np.ndarray], path: Union[str, Path]) -> Path:
    """Write a state dict to ``path`` (``.npz``).  Returns the resolved path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # Dotted parameter names are legal npz keys as-is.
    np.savez(path, **state)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_state_dict(path: Union[str, Path]) -> Dict[str, np.ndarray]:
    """Read a state dict previously written by :func:`save_state_dict`."""
    with np.load(Path(path), allow_pickle=False) as data:
        return {key: data[key].copy() for key in data.files}


def save_module(module: Module, path: Union[str, Path]) -> Path:
    """Persist a module's parameters."""
    return save_state_dict(module.state_dict(), path)


def load_module(module: Module, path: Union[str, Path]) -> Module:
    """Load parameters into ``module`` (shapes must match) and return it."""
    module.load_state_dict(load_state_dict(path))
    return module


def save_bundle(
    path: Union[str, Path], arrays: Dict[str, np.ndarray], meta: Dict[str, object]
) -> Path:
    """Write arrays plus a JSON metadata blob to one ``.npz`` file.

    ``meta`` must be JSON-serialisable; it is stored under :data:`META_KEY`.
    Returns the path NumPy actually wrote (an ``.npz`` suffix is appended when
    missing).
    """
    if META_KEY in arrays:
        raise ValueError(f"array key {META_KEY!r} is reserved for metadata")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = dict(arrays)
    payload[META_KEY] = np.array(json.dumps(meta))
    np.savez(path, **payload)
    return path if path.suffix == ".npz" else Path(str(path) + ".npz")


def load_bundle(path: Union[str, Path]) -> Tuple[Dict[str, np.ndarray], Dict[str, object]]:
    """Read a bundle written by :func:`save_bundle`; returns ``(arrays, meta)``."""
    with np.load(Path(path), allow_pickle=False) as data:
        if META_KEY not in data.files:
            raise ValueError(f"{path} is not a bundle (missing {META_KEY!r})")
        meta = json.loads(str(data[META_KEY]))
        arrays = {key: data[key].copy() for key in data.files if key != META_KEY}
    return arrays, meta
