"""Parameter-initialisation schemes for the NumPy neural-network stack."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RNGLike, ensure_rng


def xavier_uniform(fan_in: int, fan_out: int, rng: RNGLike = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a ``(fan_in, fan_out)`` weight matrix."""
    rng = ensure_rng(rng)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def kaiming_uniform(fan_in: int, fan_out: int, rng: RNGLike = None) -> np.ndarray:
    """He/Kaiming uniform initialisation (suited to ReLU activations)."""
    rng = ensure_rng(rng)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def zeros(*shape: int) -> np.ndarray:
    """All-zeros initialisation (used for biases)."""
    return np.zeros(shape)
