"""Neural-network modules: parameter containers and layers.

The API intentionally mirrors a small subset of ``torch.nn`` so the MTL model
code in :mod:`repro.mtl` reads like the architecture description in the paper:
``Linear`` layers, activation modules, ``Sequential`` containers and a
``Module`` base class with ``parameters()`` / ``state_dict()`` traversal.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.nn.init import kaiming_uniform, zeros
from repro.nn.tensor import Tensor
from repro.utils.rng import RNGLike, ensure_rng


class Parameter(Tensor):
    """A tensor that is updated by optimisers (``requires_grad`` always true)."""

    def __init__(self, data: np.ndarray):
        super().__init__(np.asarray(data, dtype=float), requires_grad=True)


class Module:
    """Base class for all neural-network modules.

    Sub-modules and parameters assigned as attributes are discovered
    automatically, exactly as users of mainstream frameworks expect.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # -------------------------------------------------------------- attribute magic
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------ traversal
    def parameters(self) -> List[Parameter]:
        """All parameters of this module and its sub-modules (depth-first)."""
        params = list(self._parameters.values())
        for module in self._modules.values():
            params.extend(module.parameters())
        return params

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(name, parameter)`` pairs with dotted paths."""
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all sub-modules."""
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        """Switch training mode on (or off with ``mode=False``)."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Switch to evaluation mode."""
        return self.train(False)

    # --------------------------------------------------------------- state dicts
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of all parameter arrays keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter arrays produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, param in own.items():
            value = np.asarray(state[name], dtype=float)
            if value.shape != param.data.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {param.data.shape}")
            param.data = value.copy()

    def n_parameters(self) -> int:
        """Total number of scalar parameters."""
        return int(sum(p.data.size for p in self.parameters()))

    # ----------------------------------------------------------------- forward
    def forward(self, *args, **kwargs):
        """Compute the module output (must be overridden)."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Fully-connected layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng: RNGLike = None):
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ValueError("layer sizes must be positive")
        rng = ensure_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(kaiming_uniform(in_features, out_features, rng))
        self.bias = Parameter(zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class ReLU(Module):
    """Rectified linear unit activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Sigmoid(Module):
    """Logistic sigmoid activation (used as the hard-bound output of Z and µ)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Softplus(Module):
    """Softplus activation (smooth positivity constraint)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.softplus()


class Identity(Module):
    """Pass-through module."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            setattr(self, f"layer{i}", layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)


def mlp(
    sizes: List[int],
    activation: type = ReLU,
    output_activation: Optional[type] = None,
    rng: RNGLike = None,
) -> Sequential:
    """Build a multilayer perceptron with the given layer ``sizes``.

    ``sizes = [n_in, h1, ..., n_out]``; the activation is applied between all
    layers and ``output_activation`` (a module class or ``None``) after the
    last one.
    """
    if len(sizes) < 2:
        raise ValueError("mlp needs at least input and output sizes")
    rng = ensure_rng(rng)
    layers: List[Module] = []
    for i in range(len(sizes) - 1):
        layers.append(Linear(sizes[i], sizes[i + 1], rng=rng))
        if i < len(sizes) - 2:
            layers.append(activation())
    if output_activation is not None:
        layers.append(output_activation())
    return Sequential(*layers)
