"""Minimal NumPy neural-network stack: autograd, layers, losses, optimisers."""

from repro.nn.tensor import Tensor, as_tensor, concatenate, stack_scalars
from repro.nn.modules import (
    Identity,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Softplus,
    Tanh,
    mlp,
)
from repro.nn.losses import CharbonnierLoss, L1Loss, MSELoss, charbonnier, l1, mse
from repro.nn.optim import Adam, Optimizer, SGD, clip_grad_norm
from repro.nn.schedulers import CosineAnnealingLR, ExponentialLR, Scheduler, StepLR
from repro.nn.serialization import load_module, load_state_dict, save_module, save_state_dict
from repro.nn.init import kaiming_uniform, xavier_uniform, zeros

__all__ = [
    "Tensor",
    "as_tensor",
    "concatenate",
    "stack_scalars",
    "Module",
    "Parameter",
    "Linear",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Softplus",
    "Identity",
    "Sequential",
    "mlp",
    "charbonnier",
    "mse",
    "l1",
    "CharbonnierLoss",
    "MSELoss",
    "L1Loss",
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "Scheduler",
    "StepLR",
    "ExponentialLR",
    "CosineAnnealingLR",
    "save_state_dict",
    "load_state_dict",
    "save_module",
    "load_module",
    "xavier_uniform",
    "kaiming_uniform",
    "zeros",
]
