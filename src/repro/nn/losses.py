"""Loss functions for the NumPy neural-network stack.

The supervised term of the Smart-PGSim training objective (Eqn. 4 of the
paper) is a weighted Charbonnier loss — a smooth variant of the L1 loss —
between each predicted task output and the ground truth collected from the
MIPS solver.
"""

from __future__ import annotations

from typing import Optional


from repro.nn.modules import Module
from repro.nn.tensor import Tensor, as_tensor


def charbonnier(pred: Tensor, target: Tensor, epsilon: float = 1e-9, weight: Optional[float] = None) -> Tensor:
    """Charbonnier loss ``mean(sqrt((pred - target)^2 + eps^2))``.

    ``epsilon`` matches the paper's numerical-stability constant (1e-9).
    """
    pred = as_tensor(pred)
    target = as_tensor(target)
    diff = pred - target
    loss = ((diff * diff) + epsilon ** 2).sqrt().mean()
    if weight is not None:
        loss = loss * float(weight)
    return loss


def mse(pred: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    pred = as_tensor(pred)
    target = as_tensor(target)
    diff = pred - target
    return (diff * diff).mean()


def l1(pred: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error."""
    pred = as_tensor(pred)
    target = as_tensor(target)
    return (pred - target).abs().mean()


class CharbonnierLoss(Module):
    """Module wrapper around :func:`charbonnier` with a fixed weight."""

    def __init__(self, epsilon: float = 1e-9, weight: float = 1.0):
        super().__init__()
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.epsilon = epsilon
        self.weight = weight

    def forward(self, pred: Tensor, target: Tensor) -> Tensor:
        return charbonnier(pred, target, epsilon=self.epsilon, weight=self.weight)


class MSELoss(Module):
    """Module wrapper around :func:`mse`."""

    def forward(self, pred: Tensor, target: Tensor) -> Tensor:
        return mse(pred, target)


class L1Loss(Module):
    """Module wrapper around :func:`l1`."""

    def forward(self, pred: Tensor, target: Tensor) -> Tensor:
        return l1(pred, target)
