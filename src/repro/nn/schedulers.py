"""Learning-rate schedulers."""

from __future__ import annotations

import math
from typing import Dict

from repro.nn.optim import Optimizer


class Scheduler:
    """Base class: remembers the optimiser and the initial learning rate."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch and update the optimiser's learning rate."""
        self.epoch += 1
        lr = self.compute_lr(self.epoch)
        self.optimizer.lr = lr
        return lr

    def compute_lr(self, epoch: int) -> float:
        """Learning rate at ``epoch`` (must be overridden)."""
        raise NotImplementedError

    def state_dict(self) -> Dict[str, object]:
        """Serialisable scheduler position (the schedule itself is config)."""
        return {"epoch": self.epoch, "base_lr": self.base_lr}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore a position saved by :meth:`state_dict`.

        Only the position is restored — the optimiser's current ``lr`` is
        part of the *optimiser* state dict, so a full checkpoint round-trip
        reproduces both.
        """
        self.epoch = int(state["epoch"])
        self.base_lr = float(state["base_lr"])


class StepLR(Scheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        super().__init__(optimizer)
        if step_size < 1:
            raise ValueError("step_size must be at least 1")
        self.step_size = step_size
        self.gamma = gamma

    def compute_lr(self, epoch: int) -> float:
        return self.base_lr * (self.gamma ** (epoch // self.step_size))


class ExponentialLR(Scheduler):
    """Multiply the learning rate by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.97):
        super().__init__(optimizer)
        self.gamma = gamma

    def compute_lr(self, epoch: int) -> float:
        return self.base_lr * (self.gamma ** epoch)


class CosineAnnealingLR(Scheduler):
    """Cosine decay from the base learning rate to ``min_lr`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, min_lr: float = 0.0):
        super().__init__(optimizer)
        if t_max < 1:
            raise ValueError("t_max must be at least 1")
        self.t_max = t_max
        self.min_lr = min_lr

    def compute_lr(self, epoch: int) -> float:
        progress = min(epoch, self.t_max) / self.t_max
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1 + math.cos(math.pi * progress))
