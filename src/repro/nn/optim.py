"""Optimisers and gradient utilities.

Optimisers expose ``state_dict()`` / ``load_state_dict()`` so a training run
can be checkpointed and resumed *bitwise*: the moment estimates (Adam) or
velocities (SGD) and the step counter are exactly what make a resumed update
sequence identical to an uninterrupted one.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.nn.modules import Parameter


def _load_slot_arrays(
    name: str, values: List[np.ndarray], params: List[Parameter]
) -> List[np.ndarray]:
    """Validate and copy per-parameter state arrays from a state dict."""
    if len(values) != len(params):
        raise ValueError(
            f"{name} has {len(values)} entries for {len(params)} parameters"
        )
    out = []
    for i, (value, param) in enumerate(zip(values, params)):
        arr = np.asarray(value, dtype=float)
        if arr.shape != param.data.shape:
            raise ValueError(
                f"{name}[{i}] shape {arr.shape} does not match parameter "
                f"shape {param.data.shape}"
            )
        out.append(arr.copy())
    return out


class Optimizer:
    """Base class: holds the parameter list and implements ``zero_grad``."""

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update (must be overridden)."""
        raise NotImplementedError

    def state_dict(self) -> Dict[str, object]:
        """Serialisable optimiser state (parameter values are *not* included)."""
        return {"lr": self.lr}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore state produced by :meth:`state_dict` (shapes must match)."""
        self.lr = float(state["lr"])


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-2, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad + self.weight_decay * p.data
            if self.momentum > 0:
                v *= self.momentum
                v += grad
                grad = v
            p.data = p.data - self.lr * grad

    def state_dict(self) -> Dict[str, object]:
        state = super().state_dict()
        state["velocity"] = [v.copy() for v in self._velocity]
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        super().load_state_dict(state)
        self._velocity = _load_slot_arrays("velocity", list(state["velocity"]), self.params)


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba) with optional decoupled weight decay."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ValueError("betas must be in [0, 1)")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                p.data = p.data * (1.0 - self.lr * self.weight_decay)
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad * grad
            m_hat = m / (1 - b1 ** self._t)
            v_hat = v / (1 - b2 ** self._t)
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> Dict[str, object]:
        state = super().state_dict()
        state["t"] = self._t
        state["m"] = [m.copy() for m in self._m]
        state["v"] = [v.copy() for v in self._v]
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        super().load_state_dict(state)
        self._t = int(state["t"])
        self._m = _load_slot_arrays("m", list(state["m"]), self.params)
        self._v = _load_slot_arrays("v", list(state["v"]), self.params)


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Clip the global gradient norm in place; returns the pre-clip norm."""
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float(np.sum(p.grad ** 2)) for p in params)))
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad = p.grad * scale
    return total
