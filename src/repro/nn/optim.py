"""Optimisers and gradient utilities."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.nn.modules import Parameter


class Optimizer:
    """Base class: holds the parameter list and implements ``zero_grad``."""

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update (must be overridden)."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-2, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad + self.weight_decay * p.data
            if self.momentum > 0:
                v *= self.momentum
                v += grad
                grad = v
            p.data = p.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba) with optional decoupled weight decay."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ValueError("betas must be in [0, 1)")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                p.data = p.data * (1.0 - self.lr * self.weight_decay)
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad * grad
            m_hat = m / (1 - b1 ** self._t)
            v_hat = v / (1 - b2 ** self._t)
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Clip the global gradient norm in place; returns the pre-clip norm."""
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float(np.sum(p.grad ** 2)) for p in params)))
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad = p.grad * scale
    return total
